#include "matching/max_flow.h"

#include <gtest/gtest.h>

namespace distcache {
namespace {

TEST(MaxFlow, SingleEdge) {
  MaxFlow f(2);
  f.AddEdge(0, 1, 5.0);
  EXPECT_DOUBLE_EQ(f.Solve(0, 1), 5.0);
}

TEST(MaxFlow, SeriesBottleneck) {
  MaxFlow f(3);
  f.AddEdge(0, 1, 5.0);
  f.AddEdge(1, 2, 3.0);
  EXPECT_DOUBLE_EQ(f.Solve(0, 2), 3.0);
}

TEST(MaxFlow, ParallelPathsAdd) {
  MaxFlow f(4);
  f.AddEdge(0, 1, 2.0);
  f.AddEdge(1, 3, 2.0);
  f.AddEdge(0, 2, 3.0);
  f.AddEdge(2, 3, 3.0);
  EXPECT_DOUBLE_EQ(f.Solve(0, 3), 5.0);
}

TEST(MaxFlow, ClassicAugmentingPathCase) {
  // Diamond with a cross edge: requires flow rerouting via the residual graph.
  MaxFlow f(4);
  f.AddEdge(0, 1, 1.0);
  f.AddEdge(0, 2, 1.0);
  f.AddEdge(1, 2, 1.0);
  f.AddEdge(1, 3, 1.0);
  f.AddEdge(2, 3, 1.0);
  EXPECT_DOUBLE_EQ(f.Solve(0, 3), 2.0);
}

TEST(MaxFlow, DisconnectedIsZero) {
  MaxFlow f(4);
  f.AddEdge(0, 1, 1.0);
  f.AddEdge(2, 3, 1.0);
  EXPECT_DOUBLE_EQ(f.Solve(0, 3), 0.0);
}

TEST(MaxFlow, FractionalCapacities) {
  MaxFlow f(3);
  f.AddEdge(0, 1, 0.75);
  f.AddEdge(1, 2, 0.5);
  EXPECT_NEAR(f.Solve(0, 2), 0.5, 1e-9);
}

TEST(MaxFlow, FlowOnReportsPerEdgeFlow) {
  MaxFlow f(4);
  const size_t top = f.AddEdge(0, 1, 2.0);
  f.AddEdge(1, 3, 2.0);
  const size_t bottom = f.AddEdge(0, 2, 3.0);
  f.AddEdge(2, 3, 1.0);
  EXPECT_DOUBLE_EQ(f.Solve(0, 3), 3.0);
  EXPECT_DOUBLE_EQ(f.FlowOn(top), 2.0);
  EXPECT_DOUBLE_EQ(f.FlowOn(bottom), 1.0);
}

TEST(MaxFlow, BipartiteMatchingExample) {
  // Figure 4 style: 3 objects, 3 nodes, unit demands/capacities, perfect matching.
  // source=0, objects 1-3, nodes 4-6, sink=7.
  MaxFlow f(8);
  for (int i = 1; i <= 3; ++i) {
    f.AddEdge(0, i, 1.0);
    f.AddEdge(i + 3, 7, 1.0);
  }
  f.AddEdge(1, 4, 1.0);
  f.AddEdge(1, 5, 1.0);
  f.AddEdge(2, 5, 1.0);
  f.AddEdge(2, 6, 1.0);
  f.AddEdge(3, 6, 1.0);
  f.AddEdge(3, 4, 1.0);
  EXPECT_DOUBLE_EQ(f.Solve(0, 7), 3.0);
}

TEST(MaxFlow, LargeGridTerminates) {
  constexpr size_t kN = 50;
  MaxFlow f(kN * 2 + 2);
  const size_t source = kN * 2;
  const size_t sink = kN * 2 + 1;
  for (size_t i = 0; i < kN; ++i) {
    f.AddEdge(source, i, 1.0);
    f.AddEdge(kN + i, sink, 1.0);
    f.AddEdge(i, kN + i, 1.0);
    f.AddEdge(i, kN + (i + 1) % kN, 1.0);
  }
  EXPECT_DOUBLE_EQ(f.Solve(source, sink), static_cast<double>(kN));
}

}  // namespace
}  // namespace distcache
