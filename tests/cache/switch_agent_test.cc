#include "cache/switch_agent.h"

#include <gtest/gtest.h>

#include <vector>

namespace distcache {
namespace {

CacheSwitch::Config SwitchConfig() {
  CacheSwitch::Config cfg;
  cfg.hh.sketch.width = 1024;
  cfg.hh.bloom.bits = 4096;
  cfg.hh.report_threshold = 8;
  return cfg;
}

TEST(SwitchAgent, SetPartitionEvictsForeignKeys) {
  CacheSwitch sw(SwitchConfig());
  sw.InsertInvalid(1, 16).ok();
  sw.InsertInvalid(2, 16).ok();
  SwitchAgent agent(&sw, SwitchAgent::Config{}, nullptr);
  agent.SetPartition({1});
  EXPECT_TRUE(sw.Contains(1));
  EXPECT_FALSE(sw.Contains(2));
  EXPECT_TRUE(agent.InPartition(1));
  EXPECT_FALSE(agent.InPartition(2));
}

TEST(SwitchAgent, InsertsReportedHeavyHitter) {
  CacheSwitch sw(SwitchConfig());
  std::vector<uint64_t> populated;
  SwitchAgent agent(&sw, SwitchAgent::Config{},
                    [&](uint64_t key) { populated.push_back(key); });
  agent.SetPartition({42});
  for (int i = 0; i < 20; ++i) {
    sw.RecordMiss(42);
  }
  EXPECT_EQ(agent.RunEpoch(), 1u);
  EXPECT_TRUE(sw.Contains(42));
  EXPECT_FALSE(sw.IsValid(42));  // inserted invalid; server populates via phase 2
  EXPECT_EQ(populated, (std::vector<uint64_t>{42}));
}

TEST(SwitchAgent, IgnoresKeysOutsidePartition) {
  CacheSwitch sw(SwitchConfig());
  SwitchAgent agent(&sw, SwitchAgent::Config{}, nullptr);
  agent.SetPartition({1});
  for (int i = 0; i < 20; ++i) {
    sw.RecordMiss(99);
  }
  EXPECT_EQ(agent.RunEpoch(), 0u);
  EXPECT_FALSE(sw.Contains(99));
}

TEST(SwitchAgent, EvictsColdToAdmitHotterWhenFull) {
  CacheSwitch sw(SwitchConfig());
  SwitchAgent::Config cfg;
  cfg.max_cached_objects = 1;
  cfg.replace_margin = 1.0;
  SwitchAgent agent(&sw, cfg, nullptr);
  agent.SetPartition({1, 2});
  // Key 1 cached with zero hits this epoch; key 2 very hot.
  sw.InsertInvalid(1, 16).ok();
  sw.UpdateValue(1, "v").ok();
  for (int i = 0; i < 50; ++i) {
    sw.RecordMiss(2);
  }
  EXPECT_EQ(agent.RunEpoch(), 1u);
  EXPECT_FALSE(sw.Contains(1));
  EXPECT_TRUE(sw.Contains(2));
}

TEST(SwitchAgent, KeepsHotIncumbentAgainstLukewarmReport) {
  CacheSwitch sw(SwitchConfig());
  SwitchAgent::Config cfg;
  cfg.max_cached_objects = 1;
  cfg.replace_margin = 1.5;
  SwitchAgent agent(&sw, cfg, nullptr);
  agent.SetPartition({1, 2});
  sw.InsertInvalid(1, 16).ok();
  sw.UpdateValue(1, "v").ok();
  std::string value;
  for (int i = 0; i < 20; ++i) {
    sw.Lookup(1, &value);  // incumbent has 20 hits
  }
  for (int i = 0; i < 10; ++i) {
    sw.RecordMiss(2);  // challenger only 10
  }
  EXPECT_EQ(agent.RunEpoch(), 0u);
  EXPECT_TRUE(sw.Contains(1));
  EXPECT_FALSE(sw.Contains(2));
}

TEST(SwitchAgent, RunEpochResetsDataPlaneEpochState) {
  CacheSwitch sw(SwitchConfig());
  SwitchAgent agent(&sw, SwitchAgent::Config{}, nullptr);
  agent.SetPartition({});
  sw.AddTelemetryLoad(9);
  agent.RunEpoch();
  EXPECT_EQ(sw.TelemetryLoad(), 0u);
}

}  // namespace
}  // namespace distcache
