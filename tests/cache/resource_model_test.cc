#include "cache/resource_model.h"

#include <gtest/gtest.h>

namespace distcache {
namespace {

TEST(SwitchResourceModel, AllRolesReported) {
  SwitchResourceModel model{SwitchResourceModel::Config{}};
  const auto all = model.EstimateAll();
  ASSERT_EQ(all.size(), 3u);
  EXPECT_EQ(all[0].role, "Spine");
  EXPECT_EQ(all[1].role, "Leaf (Client)");
  EXPECT_EQ(all[2].role, "Leaf (Server)");
}

TEST(SwitchResourceModel, CachingRolesUseMoreSramThanClientToR) {
  // Table 1 structure: the caching switches (spine, storage leaf) carry the value
  // store + HH detector; the client ToR only keeps the 256-entry load table.
  SwitchResourceModel model{SwitchResourceModel::Config{}};
  const auto spine = model.Estimate(SwitchRole::kSpineCache);
  const auto client = model.Estimate(SwitchRole::kLeafClient);
  EXPECT_GT(spine.sram_blocks, client.sram_blocks);
  EXPECT_GT(spine.hash_bits, client.hash_bits);
  EXPECT_GT(spine.action_slots, client.action_slots);
}

TEST(SwitchResourceModel, StorageLeafExceedsSpine) {
  // Matches Table 1's ordering: the storage-rack leaf adds miss forwarding on top of
  // the caching modules.
  SwitchResourceModel model{SwitchResourceModel::Config{}};
  const auto spine = model.Estimate(SwitchRole::kSpineCache);
  const auto leaf = model.Estimate(SwitchRole::kLeafStorage);
  EXPECT_GT(leaf.match_entries, spine.match_entries);
  EXPECT_GE(leaf.action_slots, spine.action_slots);
}

TEST(SwitchResourceModel, ResourcesScaleWithSketchSize) {
  SwitchResourceModel::Config small;
  small.cm_width = 1024;
  small.bloom_bits = 4096;
  SwitchResourceModel::Config big;
  big.cm_width = 65536 * 4;
  big.bloom_bits = 262144 * 4;
  const auto s = SwitchResourceModel(small).Estimate(SwitchRole::kSpineCache);
  const auto b = SwitchResourceModel(big).Estimate(SwitchRole::kSpineCache);
  EXPECT_GT(b.sram_blocks, s.sram_blocks);
}

TEST(SwitchResourceModel, NonZeroEverywhere) {
  SwitchResourceModel model{SwitchResourceModel::Config{}};
  for (const auto& r : model.EstimateAll()) {
    EXPECT_GT(r.match_entries, 0u) << r.role;
    EXPECT_GT(r.hash_bits, 0u) << r.role;
    EXPECT_GT(r.sram_blocks, 0u) << r.role;
    EXPECT_GT(r.action_slots, 0u) << r.role;
  }
}

}  // namespace
}  // namespace distcache
