// Property test: a random operation sequence against CacheSwitch must match a simple
// reference model (map of key -> {valid, value}) exactly, including slot accounting.
#include <gtest/gtest.h>

#include <map>
#include <string>

#include "cache/cache_switch.h"
#include "common/random.h"

namespace distcache {
namespace {

struct RefEntry {
  std::string value;
  bool valid = false;
  size_t slots = 1;
};

class CacheSwitchFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CacheSwitchFuzzTest, MatchesReferenceModel) {
  CacheSwitch::Config cfg;
  cfg.num_stages = 2;
  cfg.slots_per_stage = 64;  // small so ResourceExhausted paths get exercised
  cfg.hh.sketch.width = 256;
  cfg.hh.bloom.bits = 1024;
  CacheSwitch sw(cfg);
  std::map<uint64_t, RefEntry> ref;
  size_t ref_slots = 0;
  Rng rng(GetParam());

  const auto slots_for = [&](size_t n) { return n == 0 ? size_t{1} : (n + 15) / 16; };

  for (int i = 0; i < 20000; ++i) {
    const uint64_t key = rng.NextBounded(64);
    switch (rng.NextBounded(5)) {
      case 0: {  // InsertInvalid
        const size_t size = rng.NextBounded(129);
        const Status st = sw.InsertInvalid(key, size);
        if (ref.contains(key)) {
          EXPECT_EQ(st.code(), StatusCode::kAlreadyExists);
        } else if (ref_slots + slots_for(size) > 128) {
          EXPECT_EQ(st.code(), StatusCode::kResourceExhausted);
        } else {
          ASSERT_TRUE(st.ok());
          ref[key] = RefEntry{"", false, slots_for(size)};
          ref_slots += slots_for(size);
        }
        break;
      }
      case 1: {  // UpdateValue
        std::string value(rng.NextBounded(129), 'x');
        const Status st = sw.UpdateValue(key, value);
        auto it = ref.find(key);
        if (it == ref.end()) {
          EXPECT_EQ(st.code(), StatusCode::kNotFound);
        } else {
          const size_t new_slots = slots_for(value.size());
          if (new_slots > it->second.slots &&
              ref_slots + new_slots - it->second.slots > 128) {
            EXPECT_EQ(st.code(), StatusCode::kResourceExhausted);
          } else {
            ASSERT_TRUE(st.ok());
            ref_slots += new_slots;
            ref_slots -= it->second.slots;
            it->second = RefEntry{std::move(value), true, new_slots};
          }
        }
        break;
      }
      case 2: {  // Invalidate
        const Status st = sw.Invalidate(key);
        auto it = ref.find(key);
        if (it == ref.end()) {
          EXPECT_EQ(st.code(), StatusCode::kNotFound);
        } else {
          ASSERT_TRUE(st.ok());
          it->second.valid = false;
        }
        break;
      }
      case 3: {  // Evict
        const Status st = sw.Evict(key);
        auto it = ref.find(key);
        if (it == ref.end()) {
          EXPECT_EQ(st.code(), StatusCode::kNotFound);
        } else {
          ASSERT_TRUE(st.ok());
          ref_slots -= it->second.slots;
          ref.erase(it);
        }
        break;
      }
      case 4: {  // Lookup
        std::string value;
        const LookupResult result = sw.Lookup(key, &value);
        auto it = ref.find(key);
        if (it == ref.end()) {
          EXPECT_EQ(result, LookupResult::kMiss);
        } else if (!it->second.valid) {
          EXPECT_EQ(result, LookupResult::kInvalid);
        } else {
          EXPECT_EQ(result, LookupResult::kHit);
          EXPECT_EQ(value, it->second.value);
        }
        break;
      }
    }
    ASSERT_EQ(sw.num_entries(), ref.size());
    ASSERT_EQ(sw.slots_used(), ref_slots);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CacheSwitchFuzzTest, ::testing::Values(11, 22, 33, 44));

}  // namespace
}  // namespace distcache
