#include "cache/cache_switch.h"

#include <gtest/gtest.h>

namespace distcache {
namespace {

CacheSwitch MakeSwitch(size_t stages = 8, size_t slots = 64) {
  CacheSwitch::Config cfg;
  cfg.num_stages = stages;
  cfg.slots_per_stage = slots;
  cfg.hh.sketch.width = 1024;
  cfg.hh.bloom.bits = 4096;
  return CacheSwitch(cfg);
}

TEST(CacheSwitch, MissOnEmptyCache) {
  CacheSwitch sw = MakeSwitch();
  std::string value;
  EXPECT_EQ(sw.Lookup(1, &value), LookupResult::kMiss);
}

TEST(CacheSwitch, InsertInvalidThenUpdateMakesHit) {
  CacheSwitch sw = MakeSwitch();
  ASSERT_TRUE(sw.InsertInvalid(1, 16).ok());
  std::string value;
  EXPECT_EQ(sw.Lookup(1, &value), LookupResult::kInvalid);
  ASSERT_TRUE(sw.UpdateValue(1, "abc").ok());
  EXPECT_EQ(sw.Lookup(1, &value), LookupResult::kHit);
  EXPECT_EQ(value, "abc");
}

TEST(CacheSwitch, DoubleInsertIsAlreadyExists) {
  CacheSwitch sw = MakeSwitch();
  ASSERT_TRUE(sw.InsertInvalid(1, 16).ok());
  EXPECT_EQ(sw.InsertInvalid(1, 16).code(), StatusCode::kAlreadyExists);
}

TEST(CacheSwitch, InvalidateBlocksHitsUntilUpdate) {
  CacheSwitch sw = MakeSwitch();
  sw.InsertInvalid(1, 16).ok();
  sw.UpdateValue(1, "v1").ok();
  ASSERT_TRUE(sw.Invalidate(1).ok());
  std::string value;
  EXPECT_EQ(sw.Lookup(1, &value), LookupResult::kInvalid);
  sw.UpdateValue(1, "v2").ok();
  EXPECT_EQ(sw.Lookup(1, &value), LookupResult::kHit);
  EXPECT_EQ(value, "v2");
}

TEST(CacheSwitch, InvalidateMissingIsNotFound) {
  CacheSwitch sw = MakeSwitch();
  EXPECT_EQ(sw.Invalidate(9).code(), StatusCode::kNotFound);
  EXPECT_EQ(sw.UpdateValue(9, "x").code(), StatusCode::kNotFound);
  EXPECT_EQ(sw.Evict(9).code(), StatusCode::kNotFound);
}

TEST(CacheSwitch, HitsBumpTelemetryAndCounters) {
  CacheSwitch sw = MakeSwitch();
  sw.InsertInvalid(1, 16).ok();
  sw.UpdateValue(1, "v").ok();
  std::string value;
  for (int i = 0; i < 5; ++i) {
    sw.Lookup(1, &value);
  }
  EXPECT_EQ(sw.TelemetryLoad(), 5u);
  EXPECT_EQ(sw.HitCount(1), 5u);
}

TEST(CacheSwitch, InvalidLookupsDoNotBumpTelemetry) {
  CacheSwitch sw = MakeSwitch();
  sw.InsertInvalid(1, 16).ok();
  std::string value;
  sw.Lookup(1, &value);
  EXPECT_EQ(sw.TelemetryLoad(), 0u);
}

TEST(CacheSwitch, AddTelemetryLoadForCoherence) {
  CacheSwitch sw = MakeSwitch();
  sw.AddTelemetryLoad(7);
  EXPECT_EQ(sw.TelemetryLoad(), 7u);
}

TEST(CacheSwitch, NewEpochResetsTelemetryAndHitCounters) {
  CacheSwitch sw = MakeSwitch();
  sw.InsertInvalid(1, 16).ok();
  sw.UpdateValue(1, "v").ok();
  std::string value;
  sw.Lookup(1, &value);
  sw.NewEpoch();
  EXPECT_EQ(sw.TelemetryLoad(), 0u);
  EXPECT_EQ(sw.HitCount(1), 0u);
  EXPECT_TRUE(sw.Contains(1));  // contents survive epochs
}

TEST(CacheSwitch, SlotAccountingPerValueSize) {
  CacheSwitch sw = MakeSwitch();
  sw.InsertInvalid(1, 16).ok();  // 1 slot
  EXPECT_EQ(sw.slots_used(), 1u);
  sw.InsertInvalid(2, 128).ok();  // 8 slots
  EXPECT_EQ(sw.slots_used(), 9u);
  sw.Evict(2).ok();
  EXPECT_EQ(sw.slots_used(), 1u);
}

TEST(CacheSwitch, UpdateValueResizesSlots) {
  CacheSwitch sw = MakeSwitch();
  sw.InsertInvalid(1, 16).ok();
  sw.UpdateValue(1, std::string(100, 'x')).ok();  // 7 slots
  EXPECT_EQ(sw.slots_used(), 7u);
  sw.UpdateValue(1, "short").ok();  // back to 1 slot
  EXPECT_EQ(sw.slots_used(), 1u);
}

TEST(CacheSwitch, RejectsWhenSlotsExhausted) {
  CacheSwitch sw = MakeSwitch(/*stages=*/1, /*slots=*/2);
  ASSERT_TRUE(sw.InsertInvalid(1, 16).ok());
  ASSERT_TRUE(sw.InsertInvalid(2, 16).ok());
  EXPECT_EQ(sw.InsertInvalid(3, 16).code(), StatusCode::kResourceExhausted);
}

TEST(CacheSwitch, RejectsOversizedValue) {
  CacheSwitch sw = MakeSwitch();
  EXPECT_EQ(sw.InsertInvalid(1, 129).code(), StatusCode::kInvalidArgument);
}

TEST(CacheSwitch, ColdestKeyTracksHits) {
  CacheSwitch sw = MakeSwitch();
  for (uint64_t k : {1, 2, 3}) {
    sw.InsertInvalid(k, 16).ok();
    sw.UpdateValue(k, "v").ok();
  }
  std::string value;
  sw.Lookup(1, &value);
  sw.Lookup(1, &value);
  sw.Lookup(2, &value);
  const auto coldest = sw.ColdestKey();
  ASSERT_TRUE(coldest.has_value());
  EXPECT_EQ(*coldest, 3u);
}

TEST(CacheSwitch, ColdestKeyEmptyCache) {
  CacheSwitch sw = MakeSwitch();
  EXPECT_FALSE(sw.ColdestKey().has_value());
}

TEST(CacheSwitch, CachedKeysEnumerates) {
  CacheSwitch sw = MakeSwitch();
  sw.InsertInvalid(5, 16).ok();
  sw.InsertInvalid(7, 16).ok();
  auto keys = sw.CachedKeys();
  std::sort(keys.begin(), keys.end());
  EXPECT_EQ(keys, (std::vector<uint64_t>{5, 7}));
}

TEST(CacheSwitch, IsValidReflectsState) {
  CacheSwitch sw = MakeSwitch();
  EXPECT_FALSE(sw.IsValid(1));
  sw.InsertInvalid(1, 16).ok();
  EXPECT_FALSE(sw.IsValid(1));
  sw.UpdateValue(1, "v").ok();
  EXPECT_TRUE(sw.IsValid(1));
}

}  // namespace
}  // namespace distcache
