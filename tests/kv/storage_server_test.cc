#include "kv/storage_server.h"

#include <gtest/gtest.h>

namespace distcache {
namespace {

StorageServer MakeServer() {
  StorageServer::Config cfg;
  cfg.server_id = 3;
  cfg.capacity = 2.0;
  return StorageServer(cfg);
}

TEST(StorageServer, SeedDoesNotChargeLoad) {
  StorageServer s = MakeServer();
  ASSERT_TRUE(s.Seed(1, "x").ok());
  EXPECT_EQ(s.load(), 0.0);
  EXPECT_TRUE(s.Contains(1));
}

TEST(StorageServer, GetChargesOneUnit) {
  StorageServer s = MakeServer();
  s.Seed(1, "x").ok();
  EXPECT_TRUE(s.Get(1).ok());
  EXPECT_DOUBLE_EQ(s.load(), 1.0);
}

TEST(StorageServer, GetMissingStillChargesAndFails) {
  StorageServer s = MakeServer();
  EXPECT_FALSE(s.Get(9).ok());
  EXPECT_DOUBLE_EQ(s.load(), 1.0);
}

TEST(StorageServer, UncachedWriteCostsOneUnit) {
  StorageServer s = MakeServer();
  ASSERT_TRUE(s.Put(1, "v").ok());
  EXPECT_DOUBLE_EQ(s.load(), 1.0);
}

TEST(StorageServer, CoherenceCopiesAddCost) {
  StorageServer s = MakeServer();
  ASSERT_TRUE(s.Put(1, "v", /*coherence_copies=*/2, /*coherence_unit_cost=*/0.5).ok());
  EXPECT_DOUBLE_EQ(s.load(), 2.0);  // 1 + 0.5*2
}

TEST(StorageServer, UtilizationNormalizesByCapacity) {
  StorageServer s = MakeServer();  // capacity 2
  s.Put(1, "v").ok();
  EXPECT_DOUBLE_EQ(s.utilization(), 0.5);
  s.ResetLoad();
  EXPECT_DOUBLE_EQ(s.utilization(), 0.0);
}

TEST(StorageServer, DeleteWorks) {
  StorageServer s = MakeServer();
  s.Seed(1, "x").ok();
  EXPECT_TRUE(s.Delete(1).ok());
  EXPECT_FALSE(s.Contains(1));
}

TEST(StorageServer, IdAndCapacity) {
  StorageServer s = MakeServer();
  EXPECT_EQ(s.id(), 3u);
  EXPECT_DOUBLE_EQ(s.capacity(), 2.0);
  EXPECT_EQ(s.num_objects(), 0u);
}

}  // namespace
}  // namespace distcache
