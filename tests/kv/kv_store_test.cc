#include "kv/kv_store.h"

#include <gtest/gtest.h>

#include <string>
#include <unordered_map>

#include "common/random.h"

namespace distcache {
namespace {

TEST(KvStore, GetMissingIsNotFound) {
  KvStore kv;
  EXPECT_EQ(kv.Get(1).status().code(), StatusCode::kNotFound);
}

TEST(KvStore, PutGetRoundTrip) {
  KvStore kv;
  ASSERT_TRUE(kv.Put(1, "hello").ok());
  const auto v = kv.Get(1);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v.value(), "hello");
}

TEST(KvStore, OverwriteReplacesValue) {
  KvStore kv;
  ASSERT_TRUE(kv.Put(1, "a").ok());
  ASSERT_TRUE(kv.Put(1, "b").ok());
  EXPECT_EQ(kv.Get(1).value(), "b");
  EXPECT_EQ(kv.size(), 1u);
}

TEST(KvStore, DeleteRemoves) {
  KvStore kv;
  kv.Put(1, "x").ok();
  ASSERT_TRUE(kv.Delete(1).ok());
  EXPECT_FALSE(kv.Contains(1));
  EXPECT_EQ(kv.Delete(1).code(), StatusCode::kNotFound);
}

TEST(KvStore, RejectsOversizedValue) {
  KvStore kv;
  const std::string big(KvStore::kMaxValueSize + 1, 'x');
  EXPECT_EQ(kv.Put(1, big).code(), StatusCode::kInvalidArgument);
  const std::string max(KvStore::kMaxValueSize, 'x');
  EXPECT_TRUE(kv.Put(1, max).ok());
}

TEST(KvStore, EmptyValueAllowed) {
  KvStore kv;
  ASSERT_TRUE(kv.Put(5, "").ok());
  EXPECT_TRUE(kv.Contains(5));
  EXPECT_EQ(kv.Get(5).value(), "");
}

TEST(KvStore, GrowsPastInitialCapacity) {
  KvStore kv(8);
  for (uint64_t k = 0; k < 1000; ++k) {
    ASSERT_TRUE(kv.Put(k, std::to_string(k)).ok());
  }
  EXPECT_EQ(kv.size(), 1000u);
  for (uint64_t k = 0; k < 1000; ++k) {
    ASSERT_EQ(kv.Get(k).value(), std::to_string(k)) << k;
  }
}

TEST(KvStore, KeysEnumeratesLiveEntries) {
  KvStore kv;
  kv.Put(1, "a").ok();
  kv.Put(2, "b").ok();
  kv.Put(3, "c").ok();
  kv.Delete(2).ok();
  auto keys = kv.Keys();
  std::sort(keys.begin(), keys.end());
  EXPECT_EQ(keys, (std::vector<uint64_t>{1, 3}));
}

TEST(KvStore, DeleteKeepsOtherEntriesReachable) {
  // Backward-shift deletion must not break probe chains.
  KvStore kv(16);
  for (uint64_t k = 0; k < 64; ++k) {
    kv.Put(k, std::to_string(k)).ok();
  }
  for (uint64_t k = 0; k < 64; k += 2) {
    ASSERT_TRUE(kv.Delete(k).ok());
  }
  for (uint64_t k = 1; k < 64; k += 2) {
    ASSERT_TRUE(kv.Contains(k)) << k;
    EXPECT_EQ(kv.Get(k).value(), std::to_string(k));
  }
  for (uint64_t k = 0; k < 64; k += 2) {
    EXPECT_FALSE(kv.Contains(k)) << k;
  }
}

// Property test: a long random op sequence must behave exactly like a reference map.
class KvStoreFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(KvStoreFuzzTest, MatchesReferenceMap) {
  KvStore kv(8);
  std::unordered_map<uint64_t, std::string> ref;
  Rng rng(GetParam());
  for (int i = 0; i < 20000; ++i) {
    const uint64_t key = rng.NextBounded(300);
    switch (rng.NextBounded(4)) {
      case 0:
      case 1: {  // put
        std::string value = "v" + std::to_string(rng.NextBounded(1000));
        ASSERT_TRUE(kv.Put(key, value).ok());
        ref[key] = std::move(value);
        break;
      }
      case 2: {  // delete
        const bool existed = ref.erase(key) > 0;
        EXPECT_EQ(kv.Delete(key).ok(), existed);
        break;
      }
      case 3: {  // get
        const auto it = ref.find(key);
        const auto got = kv.Get(key);
        if (it == ref.end()) {
          EXPECT_FALSE(got.ok());
        } else {
          ASSERT_TRUE(got.ok());
          EXPECT_EQ(got.value(), it->second);
        }
        break;
      }
    }
    ASSERT_EQ(kv.size(), ref.size());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, KvStoreFuzzTest, ::testing::Values(1, 2, 3, 4, 5));

}  // namespace
}  // namespace distcache
