#include "kv/placement.h"

#include <gtest/gtest.h>

#include <vector>

namespace distcache {
namespace {

TEST(Placement, Deterministic) {
  Placement p(8, 4);
  for (uint64_t k = 0; k < 100; ++k) {
    EXPECT_EQ(p.RackOf(k), p.RackOf(k));
    EXPECT_EQ(p.ServerOf(k), p.ServerOf(k));
  }
}

TEST(Placement, ServerWithinBounds) {
  Placement p(8, 4);
  for (uint64_t k = 0; k < 10000; ++k) {
    EXPECT_LT(p.RackOf(k), 8u);
    EXPECT_LT(p.ServerInRack(k), 4u);
    EXPECT_LT(p.ServerOf(k), 32u);
  }
}

TEST(Placement, ServerIdConsistentWithRack) {
  Placement p(8, 4);
  for (uint64_t k = 0; k < 1000; ++k) {
    EXPECT_EQ(p.ServerOf(k) / 4, p.RackOf(k));
    EXPECT_EQ(p.ServerOf(k) % 4, p.ServerInRack(k));
  }
}

TEST(Placement, KeysSpreadAcrossRacks) {
  Placement p(16, 2);
  std::vector<int> counts(16, 0);
  constexpr int kKeys = 32000;
  for (uint64_t k = 0; k < kKeys; ++k) {
    ++counts[p.RackOf(k)];
  }
  for (int c : counts) {
    EXPECT_GT(c, kKeys / 16 / 2);
    EXPECT_LT(c, kKeys / 16 * 2);
  }
}

TEST(Placement, SeedChangesPlacement) {
  Placement a(8, 4, 1);
  Placement b(8, 4, 2);
  int moved = 0;
  for (uint64_t k = 0; k < 1000; ++k) {
    moved += a.ServerOf(k) != b.ServerOf(k) ? 1 : 0;
  }
  EXPECT_GT(moved, 900);  // ~31/32 expected to move
}

TEST(Placement, Accessors) {
  Placement p(8, 4);
  EXPECT_EQ(p.num_racks(), 8u);
  EXPECT_EQ(p.servers_per_rack(), 4u);
  EXPECT_EQ(p.num_servers(), 32u);
}

}  // namespace
}  // namespace distcache
