#include "sketch/bloom_filter.h"

#include <gtest/gtest.h>

#include "common/random.h"

namespace distcache {
namespace {

BloomFilter::Config SmallConfig() {
  BloomFilter::Config cfg;
  cfg.hashes = 3;
  cfg.bits = 8192;
  return cfg;
}

TEST(BloomFilter, EmptyContainsNothing) {
  BloomFilter bf(SmallConfig());
  EXPECT_FALSE(bf.MayContain(1));
  EXPECT_FALSE(bf.MayContain(999));
}

TEST(BloomFilter, NoFalseNegatives) {
  BloomFilter bf(SmallConfig());
  for (uint64_t k = 0; k < 500; ++k) {
    bf.Insert(k);
  }
  for (uint64_t k = 0; k < 500; ++k) {
    EXPECT_TRUE(bf.MayContain(k)) << k;
  }
}

TEST(BloomFilter, InsertAndTestReportsFirstInsertion) {
  BloomFilter bf(SmallConfig());
  EXPECT_FALSE(bf.InsertAndTest(77));
  EXPECT_TRUE(bf.InsertAndTest(77));
}

TEST(BloomFilter, FalsePositiveRateIsLow) {
  BloomFilter bf(SmallConfig());
  for (uint64_t k = 0; k < 1000; ++k) {
    bf.Insert(k);
  }
  int false_positives = 0;
  constexpr int kProbes = 10000;
  for (uint64_t k = 100000; k < 100000 + kProbes; ++k) {
    false_positives += bf.MayContain(k) ? 1 : 0;
  }
  // k=3 hashes, m=8192 bits/array, n=1000: per-array load 1000/8192; fp ~ (n/m)^... be generous.
  EXPECT_LT(false_positives, kProbes / 10);
}

TEST(BloomFilter, ResetClears) {
  BloomFilter bf(SmallConfig());
  bf.Insert(42);
  bf.Reset();
  EXPECT_FALSE(bf.MayContain(42));
}

TEST(BloomFilter, PaperConfigMemoryBits) {
  BloomFilter bf(BloomFilter::Config{});  // paper: 3 arrays x 256K 1-bit
  EXPECT_EQ(bf.MemoryBits(), 3u * 262144u);
}

}  // namespace
}  // namespace distcache
