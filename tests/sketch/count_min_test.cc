#include "sketch/count_min.h"

#include <gtest/gtest.h>

#include <unordered_map>

#include "common/random.h"

namespace distcache {
namespace {

CountMinSketch::Config SmallConfig() {
  CountMinSketch::Config cfg;
  cfg.rows = 4;
  cfg.width = 1024;
  return cfg;
}

TEST(CountMinSketch, ColdKeyEstimatesZero) {
  CountMinSketch cm(SmallConfig());
  EXPECT_EQ(cm.Estimate(42), 0u);
}

TEST(CountMinSketch, CountsSingleKeyExactly) {
  CountMinSketch cm(SmallConfig());
  for (int i = 0; i < 57; ++i) {
    cm.Update(7);
  }
  EXPECT_EQ(cm.Estimate(7), 57u);
}

TEST(CountMinSketch, UpdateReturnsRunningEstimate) {
  CountMinSketch cm(SmallConfig());
  EXPECT_EQ(cm.Update(3), 1u);
  EXPECT_EQ(cm.Update(3), 2u);
}

TEST(CountMinSketch, NeverUnderestimates) {
  CountMinSketch cm(SmallConfig());
  Rng rng(17);
  std::unordered_map<uint64_t, uint32_t> truth;
  for (int i = 0; i < 20000; ++i) {
    const uint64_t key = rng.NextBounded(5000);
    ++truth[key];
    cm.Update(key);
  }
  for (const auto& [key, count] : truth) {
    EXPECT_GE(cm.Estimate(key), count);
  }
}

TEST(CountMinSketch, OverestimateIsBoundedOnAverage) {
  CountMinSketch cm(SmallConfig());
  Rng rng(18);
  std::unordered_map<uint64_t, uint32_t> truth;
  constexpr int kUpdates = 10000;
  for (int i = 0; i < kUpdates; ++i) {
    const uint64_t key = rng.NextBounded(2000);
    ++truth[key];
    cm.Update(key);
  }
  // Standard CM bound: error ≤ e·N/width with prob 1-e^-rows; check the average.
  double total_error = 0.0;
  for (const auto& [key, count] : truth) {
    total_error += cm.Estimate(key) - count;
  }
  EXPECT_LT(total_error / truth.size(), 3.0 * kUpdates / 1024.0 + 1.0);
}

TEST(CountMinSketch, ResetClears) {
  CountMinSketch cm(SmallConfig());
  cm.Update(5);
  cm.Reset();
  EXPECT_EQ(cm.Estimate(5), 0u);
}

TEST(CountMinSketch, CountersSaturateAtRegisterWidth) {
  CountMinSketch::Config cfg = SmallConfig();
  cfg.counter_max = 10;  // pretend 4-bit-ish registers
  CountMinSketch cm(cfg);
  for (int i = 0; i < 100; ++i) {
    cm.Update(9);
  }
  EXPECT_EQ(cm.Estimate(9), 10u);
}

TEST(CountMinSketch, PaperConfigMemoryBits) {
  CountMinSketch::Config cfg;  // paper defaults: 4 x 64K x 16-bit
  CountMinSketch cm(cfg);
  EXPECT_EQ(cm.MemoryBits(), 4u * 65536u * 16u);
  EXPECT_EQ(cm.rows(), 4u);
  EXPECT_EQ(cm.width(), 65536u);
}

}  // namespace
}  // namespace distcache
