#include "sketch/lru_map.h"

#include <gtest/gtest.h>

#include <string>

namespace distcache {
namespace {

TEST(LruMap, PutGetRoundTrip) {
  LruMap<int, std::string> lru(4);
  EXPECT_FALSE(lru.Put(1, "one").has_value());
  ASSERT_NE(lru.Get(1), nullptr);
  EXPECT_EQ(*lru.Get(1), "one");
}

TEST(LruMap, MissingKeyIsNull) {
  LruMap<int, int> lru(2);
  EXPECT_EQ(lru.Get(5), nullptr);
  EXPECT_EQ(lru.Peek(5), nullptr);
}

TEST(LruMap, EvictsLeastRecentlyUsed) {
  LruMap<int, int> lru(2);
  lru.Put(1, 10);
  lru.Put(2, 20);
  const auto evicted = lru.Put(3, 30);
  ASSERT_TRUE(evicted.has_value());
  EXPECT_EQ(evicted->first, 1);
  EXPECT_EQ(evicted->second, 10);
  EXPECT_FALSE(lru.Contains(1));
  EXPECT_TRUE(lru.Contains(2));
  EXPECT_TRUE(lru.Contains(3));
}

TEST(LruMap, GetPromotes) {
  LruMap<int, int> lru(2);
  lru.Put(1, 10);
  lru.Put(2, 20);
  lru.Get(1);  // 2 becomes LRU
  const auto evicted = lru.Put(3, 30);
  ASSERT_TRUE(evicted.has_value());
  EXPECT_EQ(evicted->first, 2);
}

TEST(LruMap, PeekDoesNotPromote) {
  LruMap<int, int> lru(2);
  lru.Put(1, 10);
  lru.Put(2, 20);
  lru.Peek(1);  // 1 stays LRU
  const auto evicted = lru.Put(3, 30);
  ASSERT_TRUE(evicted.has_value());
  EXPECT_EQ(evicted->first, 1);
}

TEST(LruMap, PutExistingUpdatesAndPromotes) {
  LruMap<int, int> lru(2);
  lru.Put(1, 10);
  lru.Put(2, 20);
  EXPECT_FALSE(lru.Put(1, 11).has_value());
  EXPECT_EQ(*lru.Get(1), 11);
  const auto evicted = lru.Put(3, 30);
  ASSERT_TRUE(evicted.has_value());
  EXPECT_EQ(evicted->first, 2);
}

TEST(LruMap, EraseRemoves) {
  LruMap<int, int> lru(2);
  lru.Put(1, 10);
  EXPECT_TRUE(lru.Erase(1));
  EXPECT_FALSE(lru.Erase(1));
  EXPECT_EQ(lru.size(), 0u);
}

TEST(LruMap, OldestReportsEvictionCandidate) {
  LruMap<int, int> lru(3);
  EXPECT_EQ(lru.Oldest(), nullptr);
  lru.Put(1, 10);
  lru.Put(2, 20);
  EXPECT_EQ(lru.Oldest()->first, 1);
  lru.Get(1);
  EXPECT_EQ(lru.Oldest()->first, 2);
}

TEST(LruMap, SizeTracksCapacity) {
  LruMap<int, int> lru(3);
  for (int i = 0; i < 10; ++i) {
    lru.Put(i, i);
  }
  EXPECT_EQ(lru.size(), 3u);
  EXPECT_EQ(lru.capacity(), 3u);
}

}  // namespace
}  // namespace distcache
