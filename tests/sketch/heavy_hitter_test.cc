#include "sketch/heavy_hitter.h"

#include <gtest/gtest.h>

#include "common/random.h"
#include "common/zipf.h"

namespace distcache {
namespace {

HeavyHitterDetector::Config SmallConfig(uint32_t threshold = 32) {
  HeavyHitterDetector::Config cfg;
  cfg.sketch.rows = 4;
  cfg.sketch.width = 4096;
  cfg.bloom.hashes = 3;
  cfg.bloom.bits = 16384;
  cfg.report_threshold = threshold;
  return cfg;
}

TEST(HeavyHitterDetector, ColdKeysNotReported) {
  HeavyHitterDetector hh(SmallConfig());
  for (uint64_t k = 0; k < 1000; ++k) {
    EXPECT_FALSE(hh.Record(k));
  }
  EXPECT_TRUE(hh.TopReports().empty());
}

TEST(HeavyHitterDetector, HotKeyReportedOnceAtThreshold) {
  HeavyHitterDetector hh(SmallConfig(10));
  int reports = 0;
  for (int i = 0; i < 100; ++i) {
    reports += hh.Record(7) ? 1 : 0;
  }
  EXPECT_EQ(reports, 1);  // bloom filter suppresses duplicates within the epoch
  const auto top = hh.TopReports();
  ASSERT_EQ(top.size(), 1u);
  EXPECT_EQ(top[0].first, 7u);
  EXPECT_GE(top[0].second, 100u);
}

TEST(HeavyHitterDetector, ReportsRankedByCount) {
  HeavyHitterDetector hh(SmallConfig(5));
  for (int i = 0; i < 50; ++i) {
    hh.Record(1);
  }
  for (int i = 0; i < 20; ++i) {
    hh.Record(2);
  }
  const auto top = hh.TopReports();
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0].first, 1u);
  EXPECT_EQ(top[1].first, 2u);
}

TEST(HeavyHitterDetector, NewEpochClearsState) {
  HeavyHitterDetector hh(SmallConfig(5));
  for (int i = 0; i < 10; ++i) {
    hh.Record(3);
  }
  hh.NewEpoch();
  EXPECT_TRUE(hh.TopReports().empty());
  EXPECT_EQ(hh.Estimate(3), 0u);
  // Reportable again in the new epoch.
  int reports = 0;
  for (int i = 0; i < 10; ++i) {
    reports += hh.Record(3) ? 1 : 0;
  }
  EXPECT_EQ(reports, 1);
}

TEST(HeavyHitterDetector, FindsZipfHeadUnderRealisticTraffic) {
  HeavyHitterDetector hh(SmallConfig(64));
  ZipfDistribution dist(100000, 0.99);
  Rng rng(5);
  for (int i = 0; i < 50000; ++i) {
    hh.Record(dist.Sample(rng));
  }
  const auto top = hh.TopReports();
  ASSERT_GE(top.size(), 5u);
  // The hottest object must be among the first few reports.
  bool found_rank0 = false;
  for (size_t i = 0; i < 3 && i < top.size(); ++i) {
    found_rank0 |= top[i].first == 0;
  }
  EXPECT_TRUE(found_rank0);
}

TEST(HeavyHitterDetector, ReportCapIsEnforced) {
  HeavyHitterDetector::Config cfg = SmallConfig(1);
  cfg.max_reports_per_epoch = 8;
  HeavyHitterDetector hh(cfg);
  for (uint64_t k = 0; k < 100; ++k) {
    hh.Record(k);
  }
  EXPECT_LE(hh.TopReports().size(), 8u);
}

TEST(HeavyHitterDetector, MemoryBitsCombineSketchAndBloom) {
  HeavyHitterDetector hh(SmallConfig());
  EXPECT_EQ(hh.MemoryBits(), 4u * 4096u * 16u + 3u * 16384u);
}

}  // namespace
}  // namespace distcache
