#include "net/wire.h"

#include <gtest/gtest.h>

#include "common/random.h"

namespace distcache {
namespace {

Message SampleMessage() {
  Message msg;
  msg.type = MsgType::kGetReply;
  msg.key = 0x1122334455667788ULL;
  msg.value = "hello-distcache";
  msg.client_id = 42;
  msg.request_id = 777;
  msg.cache_hit = true;
  msg.has_target = true;
  msg.target = CacheNodeId{1, 9};
  msg.piggyback = {{CacheNodeId{0, 3}, 123456}, {CacheNodeId{1, 7}, 42}};
  return msg;
}

void ExpectEqual(const Message& a, const Message& b) {
  EXPECT_EQ(a.type, b.type);
  EXPECT_EQ(a.key, b.key);
  EXPECT_EQ(a.value, b.value);
  EXPECT_EQ(a.client_id, b.client_id);
  EXPECT_EQ(a.request_id, b.request_id);
  EXPECT_EQ(a.cache_hit, b.cache_hit);
  EXPECT_EQ(a.has_target, b.has_target);
  EXPECT_EQ(a.target, b.target);
  ASSERT_EQ(a.piggyback.size(), b.piggyback.size());
  for (size_t i = 0; i < a.piggyback.size(); ++i) {
    EXPECT_EQ(a.piggyback[i].node, b.piggyback[i].node);
    EXPECT_EQ(a.piggyback[i].load, b.piggyback[i].load);
  }
}

TEST(Wire, RoundTrip) {
  const Message original = SampleMessage();
  std::vector<uint8_t> buffer;
  ASSERT_TRUE(EncodeMessage(original, &buffer).ok());
  const auto decoded = DecodeMessage(buffer);
  ASSERT_TRUE(decoded.ok());
  ExpectEqual(original, decoded.value());
}

TEST(Wire, RoundTripMinimalMessage) {
  Message msg;
  msg.type = MsgType::kInvalidate;
  msg.key = 5;
  std::vector<uint8_t> buffer;
  ASSERT_TRUE(EncodeMessage(msg, &buffer).ok());
  const auto decoded = DecodeMessage(buffer);
  ASSERT_TRUE(decoded.ok());
  ExpectEqual(msg, decoded.value());
}

TEST(Wire, ConsumedReportsExactLength) {
  std::vector<uint8_t> buffer;
  ASSERT_TRUE(EncodeMessage(SampleMessage(), &buffer).ok());
  buffer.push_back(0xAA);  // trailing garbage from the next packet
  size_t consumed = 0;
  const auto decoded = DecodeMessage(buffer.data(), buffer.size(), &consumed);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(consumed, buffer.size() - 1);
}

TEST(Wire, BackToBackMessagesParse) {
  std::vector<uint8_t> buffer;
  Message a = SampleMessage();
  Message b;
  b.type = MsgType::kPutRequest;
  b.key = 9;
  b.value = "v";
  ASSERT_TRUE(EncodeMessage(a, &buffer).ok());
  ASSERT_TRUE(EncodeMessage(b, &buffer).ok());
  size_t consumed = 0;
  const auto first = DecodeMessage(buffer.data(), buffer.size(), &consumed);
  ASSERT_TRUE(first.ok());
  const auto second =
      DecodeMessage(buffer.data() + consumed, buffer.size() - consumed, &consumed);
  ASSERT_TRUE(second.ok());
  ExpectEqual(b, second.value());
}

TEST(Wire, RejectsOversizedValue) {
  Message msg;
  msg.value = std::string(kMaxWireValue + 1, 'x');
  std::vector<uint8_t> buffer;
  EXPECT_EQ(EncodeMessage(msg, &buffer).code(), StatusCode::kInvalidArgument);
}

TEST(Wire, RejectsOversizedPiggyback) {
  Message msg;
  msg.piggyback.resize(kMaxPiggyback + 1);
  std::vector<uint8_t> buffer;
  EXPECT_EQ(EncodeMessage(msg, &buffer).code(), StatusCode::kInvalidArgument);
}

TEST(Wire, RejectsBadMagic) {
  std::vector<uint8_t> buffer;
  ASSERT_TRUE(EncodeMessage(SampleMessage(), &buffer).ok());
  buffer[0] = 0x00;
  EXPECT_FALSE(DecodeMessage(buffer).ok());
}

TEST(Wire, RejectsUnknownType) {
  std::vector<uint8_t> buffer;
  ASSERT_TRUE(EncodeMessage(SampleMessage(), &buffer).ok());
  buffer[1] = 0xFF;
  EXPECT_FALSE(DecodeMessage(buffer).ok());
}

TEST(Wire, RejectsAllTruncations) {
  // Every strict prefix of a valid encoding must fail cleanly, never read OOB.
  std::vector<uint8_t> buffer;
  ASSERT_TRUE(EncodeMessage(SampleMessage(), &buffer).ok());
  for (size_t len = 0; len < buffer.size(); ++len) {
    size_t consumed = 0;
    EXPECT_FALSE(DecodeMessage(buffer.data(), len, &consumed).ok()) << "len=" << len;
  }
}

TEST(Wire, FuzzRandomBytesNeverCrash) {
  Rng rng(99);
  std::vector<uint8_t> buffer(64);
  for (int trial = 0; trial < 5000; ++trial) {
    for (auto& b : buffer) {
      b = static_cast<uint8_t>(rng.Next());
    }
    size_t consumed = 0;
    const auto result = DecodeMessage(buffer.data(), rng.NextBounded(65), &consumed);
    (void)result;  // must not crash or overflow; validity is incidental
  }
}

TEST(Wire, FuzzRoundTripRandomMessages) {
  Rng rng(7);
  for (int trial = 0; trial < 2000; ++trial) {
    Message msg;
    msg.type = static_cast<MsgType>(rng.NextBounded(8));
    msg.key = rng.Next();
    msg.client_id = static_cast<uint32_t>(rng.Next());
    msg.request_id = rng.Next();
    msg.cache_hit = rng.NextBernoulli(0.5);
    msg.has_target = rng.NextBernoulli(0.5);
    msg.target = CacheNodeId{static_cast<uint32_t>(rng.NextBounded(2)),
                             static_cast<uint32_t>(rng.NextBounded(256))};
    msg.value = std::string(rng.NextBounded(kMaxWireValue + 1), 'a');
    msg.piggyback.resize(rng.NextBounded(kMaxPiggyback + 1));
    for (auto& sample : msg.piggyback) {
      sample.node = CacheNodeId{static_cast<uint32_t>(rng.NextBounded(2)),
                                static_cast<uint32_t>(rng.NextBounded(64))};
      sample.load = rng.Next();
    }
    std::vector<uint8_t> buffer;
    ASSERT_TRUE(EncodeMessage(msg, &buffer).ok());
    const auto decoded = DecodeMessage(buffer);
    ASSERT_TRUE(decoded.ok());
    ExpectEqual(msg, decoded.value());
  }
}

}  // namespace
}  // namespace distcache
