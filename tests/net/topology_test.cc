#include "net/topology.h"

#include <gtest/gtest.h>

namespace distcache {
namespace {

LeafSpineTopology MakeTopology() {
  LeafSpineTopology::Config cfg;
  cfg.num_spine = 4;
  cfg.num_storage_racks = 8;
  cfg.servers_per_rack = 16;
  cfg.num_client_racks = 2;
  return LeafSpineTopology(cfg);
}

TEST(LeafSpineTopology, Counts) {
  const auto topo = MakeTopology();
  EXPECT_EQ(topo.num_spine(), 4u);
  EXPECT_EQ(topo.num_storage_racks(), 8u);
  EXPECT_EQ(topo.num_servers(), 128u);
  EXPECT_EQ(topo.num_cache_nodes(), 12u);
  EXPECT_EQ(topo.num_client_racks(), 2u);
}

TEST(LeafSpineTopology, RackOfServer) {
  const auto topo = MakeTopology();
  EXPECT_EQ(topo.RackOfServer(0), 0u);
  EXPECT_EQ(topo.RackOfServer(15), 0u);
  EXPECT_EQ(topo.RackOfServer(16), 1u);
  EXPECT_EQ(topo.RackOfServer(127), 7u);
}

TEST(LeafSpineTopology, QueryPathTouchesTarget) {
  const auto topo = MakeTopology();
  const CacheNodeId target{0, 2};
  const auto path = topo.QueryPath(target);
  ASSERT_EQ(path.size(), 1u);
  EXPECT_EQ(path[0], target);
}

TEST(LeafSpineTopology, CoherencePathCoversAllCopies) {
  const auto topo = MakeTopology();
  const std::vector<CacheNodeId> copies{{0, 1}, {1, 3}};
  const auto path = topo.CoherencePath(copies);
  EXPECT_EQ(path, copies);
}

TEST(LeafSpineTopology, DescribeMentionsShape) {
  const auto topo = MakeTopology();
  const std::string desc = topo.Describe();
  EXPECT_NE(desc.find("4 spine"), std::string::npos);
  EXPECT_NE(desc.find("8 storage racks"), std::string::npos);
}

TEST(CacheNodeId, Equality) {
  EXPECT_EQ((CacheNodeId{0, 1}), (CacheNodeId{0, 1}));
  EXPECT_FALSE((CacheNodeId{0, 1}) == (CacheNodeId{1, 1}));
}

}  // namespace
}  // namespace distcache
