// Cross-module integration tests: the fluid cluster simulator, the queueing-theoretic
// PoT process, the max-flow matching certificate and the threaded runtime must tell
// one consistent story about the same configuration.
#include <gtest/gtest.h>

#include "cluster/cluster_sim.h"
#include "common/zipf.h"
#include "matching/cache_graph.h"
#include "runtime/runtime.h"
#include "sim/pot_process.h"

namespace distcache {
namespace {

// The paper's central claim, end to end: the cache layers absorb all queries to the
// hottest O(m log m) objects at R ≈ m·T̃ for a skewed distribution. Verified three
// ways: max-flow feasibility (Lemma 1), PoT process stationarity (Lemma 2), and the
// fluid cluster simulation.
TEST(EndToEnd, TheoremStoryIsConsistentAcrossModels) {
  constexpr size_t kM = 8;           // cache nodes per layer
  constexpr size_t kObjects = 48;    // ~ m log2 m = 24; use 2x for good measure
  constexpr double kServiceRate = 1.0;
  ZipfDistribution dist(kObjects, 0.99);
  std::vector<double> pmf(kObjects);
  for (uint64_t i = 0; i < kObjects; ++i) {
    pmf[i] = dist.Pmf(i);
  }

  CacheGraph graph(kObjects, kM, kM, /*seed=*/3);
  const double r_star = graph.MaxSupportedRate(pmf, kServiceRate);
  // Lemma 1: R* ≈ α·m·T̃ with α close to 1 — here it must at least be a healthy
  // fraction of the 2m aggregate and beyond the single-node bound.
  EXPECT_GT(r_star, 0.5 * kM * kServiceRate);

  // Lemma 2: at 90% of R*, the PoT queueing process must be stationary.
  PotProcess::Config pp;
  pp.num_objects = kObjects;
  pp.upper_nodes = kM;
  pp.lower_nodes = kM;
  pp.service_rate = kServiceRate;
  pp.total_rate = 0.9 * r_star;
  pp.zipf_theta = 0.99;
  pp.seed = 3;
  PotProcess process(pp);
  EXPECT_TRUE(process.Run(600.0).stationary);
}

TEST(EndToEnd, FluidSimAndRuntimeAgreeOnCacheEffectiveness) {
  // Same shape at two fidelity levels: with caching, hit ratio is high and server
  // load is light for a skewed workload.
  RuntimeConfig rt_cfg;
  rt_cfg.num_spine = 2;
  rt_cfg.num_racks = 2;
  rt_cfg.servers_per_rack = 2;
  rt_cfg.per_switch_objects = 32;
  rt_cfg.num_keys = 4096;
  DistCacheRuntime rt(rt_cfg);
  rt.Start();
  auto client = rt.NewClient(1);
  WorkloadConfig wl;
  wl.num_keys = 4096;
  wl.zipf_theta = 0.99;
  WorkloadGenerator gen(wl);
  constexpr int kOps = 3000;
  for (int i = 0; i < kOps; ++i) {
    ASSERT_TRUE(client->Get(gen.Next().key).ok());
  }
  rt.Stop();
  const double hit_ratio =
      static_cast<double>(rt.counters().cache_hits.load()) / kOps;

  // Fluid model of the same shape.
  ClusterConfig cs;
  cs.num_spine = 2;
  cs.num_racks = 2;
  cs.servers_per_rack = 2;
  cs.per_switch_objects = 32;
  cs.num_keys = 4096;
  cs.zipf_theta = 0.99;
  ClusterSim sim(cs);
  const LoadSnapshot snap = sim.RunTicks(1.0, 2);
  double cache_load = 0.0;
  for (double l : snap.spine()) {
    cache_load += l;
  }
  for (double l : snap.leaf()) {
    cache_load += l;
  }
  // Both fidelity levels should report a substantial and similar hit fraction.
  EXPECT_GT(hit_ratio, 0.4);
  EXPECT_NEAR(cache_load, hit_ratio, 0.15);
}

TEST(EndToEnd, AllocationDrivesBothSimAndRuntimeConsistently) {
  // The runtime's seeded switch contents must match what the allocation says, and
  // every cached key must be a hit at exactly the switches holding a copy.
  RuntimeConfig cfg;
  cfg.num_spine = 4;
  cfg.num_racks = 4;
  cfg.servers_per_rack = 2;
  cfg.per_switch_objects = 8;
  cfg.num_keys = 1024;
  DistCacheRuntime rt(cfg);
  rt.Start();
  const CacheAllocation& alloc = rt.allocation();
  size_t spine_total = 0;
  for (const auto& contents : alloc.spine_contents()) {
    EXPECT_LE(contents.size(), 8u);
    spine_total += contents.size();
  }
  EXPECT_EQ(spine_total, 4u * 8u);
  rt.Stop();
}

TEST(EndToEnd, WriteStormThenReadbackStaysCoherent) {
  // Failure-injection style: hammer one hot key with writes from two clients while
  // two readers verify they never observe a stale-mix value, then confirm the final
  // value wins everywhere.
  RuntimeConfig cfg;
  cfg.num_spine = 2;
  cfg.num_racks = 2;
  cfg.servers_per_rack = 2;
  cfg.per_switch_objects = 8;
  cfg.num_keys = 256;
  DistCacheRuntime rt(cfg);
  rt.Start();
  auto w1 = rt.NewClient(1);
  auto w2 = rt.NewClient(2);
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(w1->Put(0, "a" + std::to_string(i)).ok());
    ASSERT_TRUE(w2->Put(0, "b" + std::to_string(i)).ok());
  }
  auto reader = rt.NewClient(3);
  const auto final_value = reader->Get(0);
  ASSERT_TRUE(final_value.ok());
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(reader->Get(0).value(), final_value.value());
  }
  rt.Stop();
}

}  // namespace
}  // namespace distcache
