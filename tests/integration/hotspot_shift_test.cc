// Integration test for the decentralized cache-update loop (§4.3): heavy-hitter
// detection -> agent eviction/insertion -> server-populated values, under a
// workload whose hot set moves.
#include <gtest/gtest.h>

#include <unordered_set>

#include "cache/cache_switch.h"
#include "cache/switch_agent.h"
#include "common/random.h"
#include "common/zipf.h"
#include "kv/storage_server.h"

namespace distcache {
namespace {

class HotspotShiftTest : public ::testing::Test {
 protected:
  HotspotShiftTest() : server_(StorageServer::Config{0, 1.0}) {
    CacheSwitch::Config sw_cfg;
    sw_cfg.hh.report_threshold = 32;
    sw_ = std::make_unique<CacheSwitch>(sw_cfg);
    SwitchAgent::Config agent_cfg;
    agent_cfg.max_cached_objects = 64;
    agent_ = std::make_unique<SwitchAgent>(sw_.get(), agent_cfg, [this](uint64_t key) {
      auto value = server_.Get(key);
      ASSERT_TRUE(value.ok());
      sw_->UpdateValue(key, std::move(value).value()).ok();
    });
    for (uint64_t key = 0; key < kKeys; ++key) {
      server_.Seed(key, "v" + std::to_string(key)).ok();
    }
    std::unordered_set<uint64_t> all;
    for (uint64_t k = 0; k < kKeys; ++k) {
      all.insert(k);
    }
    agent_->SetPartition(std::move(all));
  }

  double RunEpoch(uint64_t shift, Rng& rng) {
    ZipfDistribution dist(kKeys, 0.99);
    uint64_t hits = 0;
    constexpr int kQueries = 30000;
    std::string value;
    for (int q = 0; q < kQueries; ++q) {
      const uint64_t key = (dist.Sample(rng) + shift) % kKeys;
      if (sw_->Lookup(key, &value) == LookupResult::kHit) {
        ++hits;
      } else {
        sw_->RecordMiss(key);
      }
    }
    agent_->RunEpoch();
    return static_cast<double>(hits) / kQueries;
  }

  static constexpr uint64_t kKeys = 50000;
  StorageServer server_;
  std::unique_ptr<CacheSwitch> sw_;
  std::unique_ptr<SwitchAgent> agent_;
};

TEST_F(HotspotShiftTest, WarmupReachesHighHitRatio) {
  Rng rng(1);
  double hit_ratio = 0.0;
  for (int epoch = 0; epoch < 6; ++epoch) {
    hit_ratio = RunEpoch(0, rng);
  }
  EXPECT_GT(hit_ratio, 0.4);  // 64 hottest of zipf-0.99/50k hold ~45% of the mass
}

TEST_F(HotspotShiftTest, RecoversAfterHotSetShift) {
  Rng rng(2);
  for (int epoch = 0; epoch < 6; ++epoch) {
    RunEpoch(0, rng);
  }
  const double before = RunEpoch(0, rng);
  const double at_shift = RunEpoch(25000, rng);  // cold caches for the new hot set
  EXPECT_LT(at_shift, 0.5 * before);
  double recovered = 0.0;
  for (int epoch = 0; epoch < 6; ++epoch) {
    recovered = RunEpoch(25000, rng);
  }
  EXPECT_GT(recovered, 0.8 * before);
}

TEST_F(HotspotShiftTest, PopulatedValuesAreServerValues) {
  Rng rng(3);
  for (int epoch = 0; epoch < 4; ++epoch) {
    RunEpoch(0, rng);
  }
  std::string value;
  int checked = 0;
  for (uint64_t key : sw_->CachedKeys()) {
    if (sw_->Lookup(key, &value) == LookupResult::kHit) {
      EXPECT_EQ(value, "v" + std::to_string(key));
      ++checked;
    }
  }
  EXPECT_GT(checked, 0);
}

TEST_F(HotspotShiftTest, CacheSizeBudgetRespected) {
  Rng rng(4);
  for (int epoch = 0; epoch < 8; ++epoch) {
    RunEpoch(epoch % 2 == 0 ? 0 : 10000, rng);  // churny workload
    EXPECT_LE(sw_->num_entries(), 64u);
  }
}

}  // namespace
}  // namespace distcache
