// Integration test for the hot-spot-shift / online-reallocation loop (§6.4) at
// the cluster-engine level, on the phased workload timeline: the hot set rotates
// onto cold keys (hit ratio collapses), the controller re-allocates the cache
// from observed heavy-hitter counts (sketch → merge → refill → route push), and
// the hit ratio recovers — in all three engines, with request-level parity.
// (The switch-local version of the same loop — detector → agent eviction /
// insertion on one CacheSwitch — is covered by tests/cache/switch_agent_test.cc.)
#include <gtest/gtest.h>

#include <cmath>

#include "sim/sim_backend.h"

namespace distcache {
namespace {

constexpr uint64_t kRequests = 400'000;
constexpr uint64_t kShiftAt = kRequests * 4 / 10;
constexpr uint64_t kReallocAt = kRequests * 6 / 10;

SimBackendConfig ShiftConfig() {
  SimBackendConfig cfg;
  cfg.cluster.mechanism = Mechanism::kDistCache;
  cfg.cluster.num_spine = 8;
  cfg.cluster.num_racks = 8;
  cfg.cluster.servers_per_rack = 4;
  cfg.cluster.per_switch_objects = 50;
  cfg.cluster.num_keys = 1'000'000;
  cfg.cluster.zipf_theta = 0.99;
  cfg.cluster.seed = 7;
  cfg.sample_interval = kRequests / 10;
  cfg.events = {ClusterEvent::ShiftHotspot(kShiftAt, cfg.cluster.num_keys / 2),
                ClusterEvent::ReallocateCache(kReallocAt)};
  return cfg;
}

double RelDiff(double a, double b) {
  return b == 0.0 ? std::abs(a) : std::abs(a - b) / std::abs(b);
}

// The paper's trajectory, request-level: healthy hit ratio, collapse when the
// hot set moves onto uncached keys, recovery to within 2% of the pre-shift value
// once the controller re-allocates from observed counts.
TEST(HotspotShift, SequentialDipsThenRecoversWithin2Percent) {
  const SimBackendConfig cfg = ShiftConfig();
  const BackendStats st =
      MakeSimBackend(BackendKind::kSequential, cfg)->Run(kRequests);
  ASSERT_EQ(st.series.size(), 10u);
  const double pre = st.series[3].hit_ratio();
  const double dip = st.series[5].hit_ratio();
  const double recovered = st.series.back().hit_ratio();
  EXPECT_GT(pre, 0.3);  // warm cache before the shift
  EXPECT_LT(dip, 0.1 * pre);  // the cached set is cold for the shifted hot set
  EXPECT_GT(recovered, 0.98 * pre);  // re-allocation restores the hit ratio
  EXPECT_LT(recovered, 1.02 * pre);
}

// Acceptance: sharded-vs-sequential parity within 1% on hit ratio and cache
// imbalance under a hot-spot-shift timeline (both engines drive the same shared
// request core; the sharded re-allocation merges per-shard observed counts at
// the controller rendezvous).
TEST(HotspotShift, ShardedParityWithSequentialWithin1Percent) {
  SimBackendConfig cfg = ShiftConfig();
  const BackendStats seq =
      MakeSimBackend(BackendKind::kSequential, cfg)->Run(kRequests);
  cfg.shards = 4;
  const BackendStats shard =
      MakeSimBackend(BackendKind::kSharded, cfg)->Run(kRequests);
  EXPECT_LT(RelDiff(shard.hit_ratio(), seq.hit_ratio()), 0.01)
      << "sharded " << shard.hit_ratio() << " vs sequential " << seq.hit_ratio();
  EXPECT_LT(RelDiff(shard.CacheImbalance(), seq.CacheImbalance()), 0.01)
      << "sharded " << shard.CacheImbalance() << " vs sequential "
      << seq.CacheImbalance();
  // And the sharded trajectory recovers like the reference.
  ASSERT_EQ(shard.series.size(), 10u);
  EXPECT_GT(shard.series.back().hit_ratio(),
            0.98 * shard.series[3].hit_ratio());
}

// The fluid engine consumes the same timeline analytically: exact collapse (the
// reachable cached mass of the shifted hot set is ~0) and exact recovery (the
// analytic re-allocation refills with the true hot set).
TEST(HotspotShift, FluidTrajectoryBracketsTheRequestEngines) {
  const SimBackendConfig cfg = ShiftConfig();
  const BackendStats fluid =
      MakeSimBackend(BackendKind::kFluid, cfg)->Run(kRequests);
  ASSERT_EQ(fluid.series.size(), 10u);  // timeline lands on the sampling grid
  const double pre = fluid.series[3].hit_ratio();
  EXPECT_GT(pre, 0.3);
  EXPECT_LT(fluid.series[5].hit_ratio(), 0.05 * pre);
  EXPECT_NEAR(fluid.series.back().hit_ratio(), pre, 0.02 * pre);
  // Request-level engines converge to the fluid hit ratio on the healthy prefix.
  const BackendStats seq =
      MakeSimBackend(BackendKind::kSequential, cfg)->Run(kRequests);
  EXPECT_LT(RelDiff(seq.series[3].hit_ratio(), pre), 0.03);
}

// A shift without re-allocation stays collapsed: the controller reaction — not
// time — is what restores the hit ratio.
TEST(HotspotShift, NoReallocationNoRecovery) {
  SimBackendConfig cfg = ShiftConfig();
  cfg.events = {ClusterEvent::ShiftHotspot(kShiftAt, cfg.cluster.num_keys / 2)};
  const BackendStats st =
      MakeSimBackend(BackendKind::kSequential, cfg)->Run(kRequests);
  ASSERT_EQ(st.series.size(), 10u);
  EXPECT_LT(st.series.back().hit_ratio(), 0.1 * st.series[3].hit_ratio());
}

// Failure events *after* a re-allocation must route the refilled cached set:
// the re-allocation rebuilds the remaining timeline's route snapshots (and the
// sharded controller multicasts them with the kRouteUpdate), so a switch
// restoration does not resurrect the pre-shift allocation. Regression guard:
// the construction-time kRecoverSpine snapshot used to collapse the hit ratio
// back to ~0 for the rest of the run.
TEST(HotspotShift, RecoveryAfterReallocationKeepsRefilledCache) {
  SimBackendConfig cfg = ShiftConfig();
  cfg.events = {ClusterEvent::FailSpine(kRequests / 10, 0),
                ClusterEvent::ShiftHotspot(kShiftAt, cfg.cluster.num_keys / 2),
                ClusterEvent::ReallocateCache(kReallocAt),
                ClusterEvent::RunRecovery(kReallocAt),  // ends transit blackhole
                ClusterEvent::RecoverSpine(kRequests * 8 / 10, 0)};
  for (const BackendKind kind :
       {BackendKind::kSequential, BackendKind::kSharded}) {
    SimBackendConfig run_cfg = cfg;
    run_cfg.shards = kind == BackendKind::kSharded ? 2 : 1;
    const BackendStats st = MakeSimBackend(kind, run_cfg)->Run(kRequests);
    ASSERT_EQ(st.series.size(), 10u);
    const double recovered = st.series[7].hit_ratio();  // post-realloc, spine 0 down
    EXPECT_GT(recovered, 0.25) << "engine " << static_cast<int>(kind);
    // After the switch restoration the refilled cache must persist.
    EXPECT_GT(st.series[9].hit_ratio(), 0.9 * recovered)
        << "engine " << static_cast<int>(kind);
  }
}

// Re-allocation must not resurrect dead routing state: total charged load stays
// conserved across the whole timeline (read-only workload ⇒ one unit per read).
TEST(HotspotShift, LoadConservationAcrossShiftAndRealloc) {
  const SimBackendConfig cfg = ShiftConfig();
  for (const BackendKind kind :
       {BackendKind::kSequential, BackendKind::kSharded}) {
    SimBackendConfig run_cfg = cfg;
    run_cfg.shards = kind == BackendKind::kSharded ? 4 : 1;
    const BackendStats st = MakeSimBackend(kind, run_cfg)->Run(kRequests);
    double total = 0.0;
    for (const auto& layer : st.cache_load) {
      for (double x : layer) total += x;
    }
    for (double x : st.server_load) total += x;
    EXPECT_NEAR(total, static_cast<double>(kRequests), 1e-6);
  }
}

}  // namespace
}  // namespace distcache
