// Differential and property tests for the per-node cache-policy layer.
//
// Every dynamic NodeCache is checked op-for-op against a brute-force reference
// model on random traces (the LFU reference runs a bit-identical CountMinSketch
// via LfuHistorySketchConfig, so even the sketch-seeded admission filter must
// agree exactly). The CachePolicyRuntime is then driven with random read/write
// streams and checked against its structural invariants: per-node capacity is
// never exceeded, inclusive mode keeps upper copies a subset of the chain below,
// exclusive mode keeps at most one resident copy per key, and write-back dirty
// bits obey the conservation law
//   dirty_created == writebacks + dirty_merged + dirty_lost + resident dirty.
#include "core/cache_policy.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <deque>
#include <limits>
#include <map>
#include <memory>
#include <random>
#include <set>
#include <vector>

#include "core/allocation.h"
#include "kv/placement.h"
#include "sketch/count_min.h"

namespace distcache {
namespace {

// ---- Brute-force reference models ------------------------------------------
//
// Each reference stores (key, dirty) lines in plain containers with the
// textbook update rule, no capacity tricks. They mirror only the operations the
// runtime uses: Lookup, Contains, Admit (callers never admit a resident key),
// MarkDirty, Erase, Clear.

struct RefLine {
  uint64_t key;
  bool dirty;
};

class RefCache {
 public:
  virtual ~RefCache() = default;
  virtual bool Lookup(uint64_t key, std::optional<EvictedLine>& evicted) = 0;
  virtual bool Contains(uint64_t key) const = 0;
  virtual std::optional<EvictedLine> Admit(uint64_t key, bool dirty) = 0;
  virtual void MarkDirty(uint64_t key) = 0;
  virtual void Erase(uint64_t key) = 0;
  virtual void Clear() = 0;
  virtual std::map<uint64_t, bool> Contents() const = 0;
};

// LRU: MRU at the front of a list; eviction from the back.
class RefLru : public RefCache {
 public:
  explicit RefLru(size_t capacity) : capacity_(capacity) {}

  bool Lookup(uint64_t key, std::optional<EvictedLine>&) override {
    auto it = Find(key);
    if (it == lines_.end()) {
      return false;
    }
    const RefLine line = *it;
    lines_.erase(it);
    lines_.push_front(line);
    return true;
  }
  bool Contains(uint64_t key) const override {
    return std::any_of(lines_.begin(), lines_.end(),
                       [&](const RefLine& l) { return l.key == key; });
  }
  std::optional<EvictedLine> Admit(uint64_t key, bool dirty) override {
    lines_.push_front({key, dirty});
    if (lines_.size() <= capacity_) {
      return std::nullopt;
    }
    const RefLine victim = lines_.back();
    lines_.pop_back();
    return EvictedLine{victim.key, victim.dirty};
  }
  void MarkDirty(uint64_t key) override {
    auto it = Find(key);
    if (it != lines_.end()) {
      it->dirty = true;
    }
  }
  void Erase(uint64_t key) override {
    auto it = Find(key);
    if (it != lines_.end()) {
      lines_.erase(it);
    }
  }
  void Clear() override { lines_.clear(); }
  std::map<uint64_t, bool> Contents() const override {
    std::map<uint64_t, bool> out;
    for (const RefLine& l : lines_) {
      out[l.key] = l.dirty;
    }
    return out;
  }

 private:
  std::deque<RefLine>::iterator Find(uint64_t key) {
    return std::find_if(lines_.begin(), lines_.end(),
                        [&](const RefLine& l) { return l.key == key; });
  }
  size_t capacity_;
  std::deque<RefLine> lines_;  // front = MRU
};

// FIFO: insertion order only; lookups never touch the order.
class RefFifo : public RefCache {
 public:
  explicit RefFifo(size_t capacity) : capacity_(capacity) {}

  bool Lookup(uint64_t key, std::optional<EvictedLine>&) override {
    return Contains(key);
  }
  bool Contains(uint64_t key) const override {
    return std::any_of(lines_.begin(), lines_.end(),
                       [&](const RefLine& l) { return l.key == key; });
  }
  std::optional<EvictedLine> Admit(uint64_t key, bool dirty) override {
    lines_.push_back({key, dirty});
    if (lines_.size() <= capacity_) {
      return std::nullopt;
    }
    const RefLine victim = lines_.front();
    lines_.pop_front();
    return EvictedLine{victim.key, victim.dirty};
  }
  void MarkDirty(uint64_t key) override {
    for (RefLine& l : lines_) {
      if (l.key == key) {
        l.dirty = true;
      }
    }
  }
  void Erase(uint64_t key) override {
    lines_.erase(std::remove_if(lines_.begin(), lines_.end(),
                                [&](const RefLine& l) { return l.key == key; }),
                 lines_.end());
  }
  void Clear() override { lines_.clear(); }
  std::map<uint64_t, bool> Contents() const override {
    std::map<uint64_t, bool> out;
    for (const RefLine& l : lines_) {
      out[l.key] = l.dirty;
    }
    return out;
  }

 private:
  size_t capacity_;
  std::deque<RefLine> lines_;  // front = oldest
};

// LFU with the production sketch semantics: a bit-identical CountMinSketch
// (same config, same seed) supplies the admission estimate; resident counters
// saturate at uint32 max; the victim is the smallest count with ties broken
// toward the larger key. Admit may evict the key it just inserted.
class RefLfu : public RefCache {
 public:
  RefLfu(size_t capacity, uint64_t seed)
      : capacity_(capacity), sketch_(LfuHistorySketchConfig(seed)) {}

  bool Lookup(uint64_t key, std::optional<EvictedLine>&) override {
    auto it = lines_.find(key);
    if (it == lines_.end()) {
      return false;
    }
    if (it->second.count < std::numeric_limits<uint32_t>::max()) {
      ++it->second.count;
    }
    return true;
  }
  bool Contains(uint64_t key) const override { return lines_.count(key) != 0; }
  std::optional<EvictedLine> Admit(uint64_t key, bool dirty) override {
    const uint32_t estimate = sketch_.Update(key);
    lines_[key] = Counted{std::max(estimate, 1u), dirty};
    if (lines_.size() <= capacity_) {
      return std::nullopt;
    }
    uint64_t victim_key = 0;
    uint32_t victim_count = std::numeric_limits<uint32_t>::max();
    bool have = false;
    for (const auto& [k, line] : lines_) {
      if (!have || line.count < victim_count ||
          (line.count == victim_count && k > victim_key)) {
        have = true;
        victim_key = k;
        victim_count = line.count;
      }
    }
    const bool victim_dirty = lines_.at(victim_key).dirty;
    lines_.erase(victim_key);
    return EvictedLine{victim_key, victim_dirty};
  }
  void MarkDirty(uint64_t key) override {
    auto it = lines_.find(key);
    if (it != lines_.end()) {
      it->second.dirty = true;
    }
  }
  void Erase(uint64_t key) override { lines_.erase(key); }
  void Clear() override { lines_.clear(); }  // history survives, like production
  std::map<uint64_t, bool> Contents() const override {
    std::map<uint64_t, bool> out;
    for (const auto& [k, line] : lines_) {
      out[k] = line.dirty;
    }
    return out;
  }

 private:
  struct Counted {
    uint32_t count = 0;
    bool dirty = false;
  };
  size_t capacity_;
  std::map<uint64_t, Counted> lines_;
  CountMinSketch sketch_;
};

// Segmented LRU: probation (new lines) + protected (second hit promotes); a
// promotion's displaced protected line demotes to probation MRU and can push
// probation's LRU line out of the node (the lookup-eviction).
class RefSlru : public RefCache {
 public:
  explicit RefSlru(size_t capacity)
      : protected_cap_(capacity / 2), probation_cap_(capacity - capacity / 2) {}

  bool Lookup(uint64_t key, std::optional<EvictedLine>& evicted) override {
    auto pit = Find(protected_, key);
    if (pit != protected_.end()) {
      const RefLine line = *pit;
      protected_.erase(pit);
      protected_.push_front(line);
      return true;
    }
    auto bit = Find(probation_, key);
    if (bit == probation_.end()) {
      return false;
    }
    if (protected_cap_ == 0) {
      const RefLine line = *bit;
      probation_.erase(bit);
      probation_.push_front(line);  // degenerate shape: stay, just touch
      return true;
    }
    const RefLine line = *bit;
    probation_.erase(bit);
    protected_.push_front(line);
    if (protected_.size() > protected_cap_) {
      const RefLine demoted = protected_.back();
      protected_.pop_back();
      probation_.push_front(demoted);
      if (probation_.size() > probation_cap_) {
        const RefLine out = probation_.back();
        probation_.pop_back();
        evicted = EvictedLine{out.key, out.dirty};
      }
    }
    return true;
  }
  bool Contains(uint64_t key) const override {
    const auto in = [&](const std::deque<RefLine>& seg) {
      return std::any_of(seg.begin(), seg.end(),
                         [&](const RefLine& l) { return l.key == key; });
    };
    return in(protected_) || in(probation_);
  }
  std::optional<EvictedLine> Admit(uint64_t key, bool dirty) override {
    probation_.push_front({key, dirty});
    if (probation_.size() <= probation_cap_) {
      return std::nullopt;
    }
    const RefLine victim = probation_.back();
    probation_.pop_back();
    return EvictedLine{victim.key, victim.dirty};
  }
  void MarkDirty(uint64_t key) override {
    for (std::deque<RefLine>* seg : {&protected_, &probation_}) {
      auto it = Find(*seg, key);
      if (it != seg->end()) {
        it->dirty = true;
        return;
      }
    }
  }
  void Erase(uint64_t key) override {
    for (std::deque<RefLine>* seg : {&protected_, &probation_}) {
      auto it = Find(*seg, key);
      if (it != seg->end()) {
        seg->erase(it);
        return;
      }
    }
  }
  void Clear() override {
    protected_.clear();
    probation_.clear();
  }
  std::map<uint64_t, bool> Contents() const override {
    std::map<uint64_t, bool> out;
    for (const std::deque<RefLine>* seg : {&protected_, &probation_}) {
      for (const RefLine& l : *seg) {
        out[l.key] = l.dirty;
      }
    }
    return out;
  }

 private:
  static std::deque<RefLine>::iterator Find(std::deque<RefLine>& seg,
                                            uint64_t key) {
    return std::find_if(seg.begin(), seg.end(),
                        [&](const RefLine& l) { return l.key == key; });
  }
  size_t protected_cap_;
  size_t probation_cap_;
  std::deque<RefLine> protected_;  // front = MRU
  std::deque<RefLine> probation_;
};

std::unique_ptr<RefCache> MakeReference(CachePolicyKind kind, size_t capacity,
                                        uint64_t seed) {
  switch (kind) {
    case CachePolicyKind::kLru: return std::make_unique<RefLru>(capacity);
    case CachePolicyKind::kFifo: return std::make_unique<RefFifo>(capacity);
    case CachePolicyKind::kLfu: return std::make_unique<RefLfu>(capacity, seed);
    case CachePolicyKind::kSegmented: return std::make_unique<RefSlru>(capacity);
    default: return nullptr;
  }
}

std::map<uint64_t, bool> Contents(const NodeCache& cache) {
  std::map<uint64_t, bool> out;
  cache.ForEach([&](uint64_t key, bool dirty) { out[key] = dirty; });
  return out;
}

// Drives one NodeCache and its reference through the same random trace and
// requires identical observable behavior after every operation: hit/miss
// verdicts, eviction victims (key and dirty bit), and full contents.
void RunDifferential(CachePolicyKind kind, size_t capacity, uint64_t seed,
                     int ops) {
  const uint64_t sketch_seed = 0xfeedULL + seed;
  auto cache = MakeNodeCache(kind, capacity, sketch_seed);
  auto ref = MakeReference(kind, capacity, sketch_seed);
  ASSERT_NE(cache, nullptr);
  ASSERT_NE(ref, nullptr);
  std::mt19937_64 rng(seed);
  const uint64_t key_space = 4 * capacity + 8;
  for (int op = 0; op < ops; ++op) {
    const uint64_t key = rng() % key_space;
    switch (rng() % 8) {
      case 0: {  // erase
        const bool resident = ref->Contains(key);
        auto erased = cache->Erase(key);
        EXPECT_EQ(erased.has_value(), resident);
        ref->Erase(key);
        break;
      }
      case 1: {  // mark dirty
        const bool resident = ref->Contains(key);
        const auto r = cache->MarkDirty(key);
        EXPECT_EQ(r == NodeCache::MarkResult::kAbsent, !resident);
        ref->MarkDirty(key);
        break;
      }
      case 2: {  // failure wipe, occasionally
        if (rng() % 16 == 0) {
          cache->Clear();
          ref->Clear();
        }
        break;
      }
      default: {  // lookup; admit on miss (the runtime's read path shape)
        std::optional<EvictedLine> evicted, ref_evicted;
        const bool hit = cache->Lookup(key, evicted);
        const bool ref_hit = ref->Lookup(key, ref_evicted);
        ASSERT_EQ(hit, ref_hit) << "key " << key << " op " << op;
        EXPECT_EQ(evicted.has_value(), ref_evicted.has_value());
        if (evicted && ref_evicted) {
          EXPECT_EQ(evicted->key, ref_evicted->key);
          EXPECT_EQ(evicted->dirty, ref_evicted->dirty);
        }
        if (!hit) {
          const bool dirty = rng() % 4 == 0;
          auto victim = cache->Admit(key, dirty);
          auto ref_victim = ref->Admit(key, dirty);
          ASSERT_EQ(victim.has_value(), ref_victim.has_value());
          if (victim && ref_victim) {
            EXPECT_EQ(victim->key, ref_victim->key);
            EXPECT_EQ(victim->dirty, ref_victim->dirty);
          }
        }
        break;
      }
    }
    ASSERT_EQ(Contents(*cache), ref->Contents()) << "op " << op;
    ASSERT_LE(cache->size(), capacity);
  }
}

TEST(NodeCacheDifferential, LruMatchesBruteForce) {
  for (uint64_t seed : {1u, 2u, 3u}) {
    RunDifferential(CachePolicyKind::kLru, 16, seed, 4000);
  }
}

TEST(NodeCacheDifferential, FifoMatchesBruteForce) {
  for (uint64_t seed : {1u, 2u, 3u}) {
    RunDifferential(CachePolicyKind::kFifo, 16, seed, 4000);
  }
}

TEST(NodeCacheDifferential, LfuMatchesBruteForceWithBitIdenticalSketch) {
  for (uint64_t seed : {1u, 2u, 3u}) {
    RunDifferential(CachePolicyKind::kLfu, 16, seed, 4000);
  }
}

TEST(NodeCacheDifferential, SegmentedMatchesBruteForce) {
  for (uint64_t seed : {1u, 2u, 3u}) {
    RunDifferential(CachePolicyKind::kSegmented, 16, seed, 4000);
  }
}

TEST(NodeCacheDifferential, TinyCapacities) {
  // Degenerate shapes: capacity 1 (SLRU protected segment is empty) and 2.
  for (CachePolicyKind kind :
       {CachePolicyKind::kLru, CachePolicyKind::kFifo, CachePolicyKind::kLfu,
        CachePolicyKind::kSegmented}) {
    RunDifferential(kind, 1, 7, 1500);
    RunDifferential(kind, 2, 8, 1500);
  }
}

// ---- Parse / validate -------------------------------------------------------

TEST(CachePolicyConfigTest, ParseRoundTrips) {
  for (CachePolicyKind kind :
       {CachePolicyKind::kDistCache, CachePolicyKind::kStaticTopK,
        CachePolicyKind::kLru, CachePolicyKind::kLfu, CachePolicyKind::kFifo,
        CachePolicyKind::kSegmented}) {
    CachePolicyKind parsed;
    ASSERT_TRUE(ParseCachePolicy(CachePolicyName(kind), &parsed));
    EXPECT_EQ(parsed, kind);
  }
  CachePolicyKind unused;
  EXPECT_FALSE(ParseCachePolicy("round-robin", &unused));
  HierarchyMode mode;
  ASSERT_TRUE(ParseHierarchyMode("exclusive", &mode));
  EXPECT_EQ(mode, HierarchyMode::kExclusive);
  EXPECT_FALSE(ParseHierarchyMode("victim", &mode));
  WritePolicy wp;
  ASSERT_TRUE(ParseWritePolicy("write-back", &wp));
  EXPECT_EQ(wp, WritePolicy::kWriteBack);
  EXPECT_FALSE(ParseWritePolicy("write-around", &wp));
}

TEST(CachePolicyConfigTest, ValidateRejectsInconsistentCombinations) {
  // Dynamic policies require the distcache mechanism.
  EXPECT_FALSE(ValidateCachePolicy(CachePolicyKind::kLru, HierarchyMode::kInclusive,
                                   WritePolicy::kWriteThrough,
                                   Mechanism::kNoCache)
                   .empty());
  // Hierarchy/write knobs require a dynamic policy.
  EXPECT_FALSE(ValidateCachePolicy(CachePolicyKind::kDistCache,
                                   HierarchyMode::kExclusive,
                                   WritePolicy::kWriteThrough,
                                   Mechanism::kDistCache)
                   .empty());
  EXPECT_FALSE(ValidateCachePolicy(CachePolicyKind::kStaticTopK,
                                   HierarchyMode::kInclusive,
                                   WritePolicy::kWriteBack, Mechanism::kDistCache)
                   .empty());
  // The supported combinations are clean.
  EXPECT_TRUE(ValidateCachePolicy(CachePolicyKind::kDistCache,
                                  HierarchyMode::kInclusive,
                                  WritePolicy::kWriteThrough, Mechanism::kNoCache)
                  .empty());
  EXPECT_TRUE(ValidateCachePolicy(CachePolicyKind::kLfu, HierarchyMode::kExclusive,
                                  WritePolicy::kWriteBack, Mechanism::kDistCache)
                  .empty());
}

// ---- Runtime property tests -------------------------------------------------

class PolicyRuntimeTest : public ::testing::Test {
 protected:
  static constexpr uint32_t kSpines = 4;
  static constexpr uint32_t kRacks = 4;
  static constexpr uint32_t kPerNode = 8;
  static constexpr uint64_t kKeySpace = 4096;

  PolicyRuntimeTest() : placement_(kRacks, 4) {
    const AllocationConfig cfg = AllocationConfig::TwoLayer(
        Mechanism::kDistCache, kSpines, kRacks, kPerNode);
    allocation_ = std::make_unique<CacheAllocation>(cfg, placement_);
    spine_alive_.assign(kSpines, 1);
  }

  std::unique_ptr<CachePolicyRuntime> MakeRuntime(CachePolicyKind kind,
                                                  HierarchyMode hierarchy,
                                                  WritePolicy write) {
    CachePolicyConfig cfg;
    cfg.policy = kind;
    cfg.hierarchy = hierarchy;
    cfg.write = write;
    return std::make_unique<CachePolicyRuntime>(cfg, allocation_.get(),
                                                &placement_, &spine_alive_);
  }

  // One random delivered request against the runtime, mirroring the engine's
  // probe → commit protocol. Returns the writeback fan-out (unused by most
  // assertions but kept to exercise the full signature).
  void Step(CachePolicyRuntime& rt, std::mt19937_64& rng, double write_ratio) {
    const uint64_t key = rng() % kKeySpace;
    std::vector<uint32_t> wb;
    if (static_cast<double>(rng() % 1000) < write_ratio * 1000.0) {
      if (rt.config().write == WritePolicy::kWriteBack) {
        rt.WriteBack(key, wb);
      } else {
        std::vector<CacheNodeId> copies;
        rt.WriteThrough(key, copies, wb);
      }
      return;
    }
    const CachePolicyRuntime::ReadProbe probe = rt.Probe(key);
    if (probe.hit) {
      rt.CommitHit(key, probe.node, wb);
    } else {
      rt.CommitMiss(key, wb);
    }
  }

  void CheckCapacity(const CachePolicyRuntime& rt) {
    for (size_t l = 0; l < rt.num_layers(); ++l) {
      for (uint32_t n = 0; n < rt.layer_nodes(l); ++n) {
        ASSERT_LE(rt.node_cache(l, n).size(), rt.node_cache(l, n).capacity());
      }
    }
  }

  // Inclusive invariant: a copy at layer l < leaf implies copies at every layer
  // below, down to the leaf (each at the key's candidate node for that layer).
  void CheckInclusive(const CachePolicyRuntime& rt) {
    const size_t leaf = rt.num_layers() - 1;
    for (size_t l = 0; l < leaf; ++l) {
      for (uint32_t n = 0; n < rt.layer_nodes(l); ++n) {
        rt.node_cache(l, n).ForEach([&](uint64_t key, bool) {
          for (size_t below = l + 1; below <= leaf; ++below) {
            const CacheNodeId at = rt.CandidateOf(below, key);
            ASSERT_TRUE(rt.node_cache(below, at.index).Contains(key))
                << "inclusive violation: key " << key << " at layer " << l
                << " missing below at layer " << below;
          }
        });
      }
    }
  }

  // Exclusive invariant: at most one resident copy per key across the chain.
  void CheckExclusive(const CachePolicyRuntime& rt) {
    std::set<uint64_t> seen;
    for (size_t l = 0; l < rt.num_layers(); ++l) {
      for (uint32_t n = 0; n < rt.layer_nodes(l); ++n) {
        rt.node_cache(l, n).ForEach([&](uint64_t key, bool) {
          ASSERT_TRUE(seen.insert(key).second)
              << "exclusive violation: key " << key << " resident twice";
        });
      }
    }
  }

  void CheckDirtyConservation(const CachePolicyRuntime& rt) {
    const auto& c = rt.counters();
    ASSERT_EQ(c.dirty_created,
              c.writebacks + c.dirty_merged + c.dirty_lost +
                  rt.ResidentDirtyLines());
  }

  Placement placement_;
  std::unique_ptr<CacheAllocation> allocation_;
  std::vector<uint8_t> spine_alive_;
};

TEST_F(PolicyRuntimeTest, InclusiveInvariantsHoldUnderRandomTraffic) {
  for (CachePolicyKind kind :
       {CachePolicyKind::kLru, CachePolicyKind::kLfu, CachePolicyKind::kFifo,
        CachePolicyKind::kSegmented}) {
    for (WritePolicy write :
         {WritePolicy::kWriteThrough, WritePolicy::kWriteBack}) {
      auto rt = MakeRuntime(kind, HierarchyMode::kInclusive, write);
      std::mt19937_64 rng(0xabc123 + static_cast<uint64_t>(kind));
      for (int i = 0; i < 3000; ++i) {
        Step(*rt, rng, 0.3);
        if (i % 101 == 0) {
          CheckCapacity(*rt);
          CheckInclusive(*rt);
          CheckDirtyConservation(*rt);
        }
      }
      CheckCapacity(*rt);
      CheckInclusive(*rt);
      CheckDirtyConservation(*rt);
      EXPECT_GT(rt->counters().admissions, 0u);
    }
  }
}

TEST_F(PolicyRuntimeTest, ExclusiveInvariantsHoldUnderRandomTraffic) {
  for (CachePolicyKind kind :
       {CachePolicyKind::kLru, CachePolicyKind::kLfu, CachePolicyKind::kFifo,
        CachePolicyKind::kSegmented}) {
    for (WritePolicy write :
         {WritePolicy::kWriteThrough, WritePolicy::kWriteBack}) {
      auto rt = MakeRuntime(kind, HierarchyMode::kExclusive, write);
      std::mt19937_64 rng(0xdef456 + static_cast<uint64_t>(kind));
      for (int i = 0; i < 3000; ++i) {
        Step(*rt, rng, 0.3);
        if (i % 101 == 0) {
          CheckCapacity(*rt);
          CheckExclusive(*rt);
          CheckDirtyConservation(*rt);
        }
      }
      CheckCapacity(*rt);
      CheckExclusive(*rt);
      CheckDirtyConservation(*rt);
      EXPECT_GT(rt->counters().demotions, 0u);
    }
  }
}

TEST_F(PolicyRuntimeTest, DirtyConservationSurvivesNodeFailures) {
  // Write-back + periodic spine wipes: lost dirty lines must move to the
  // dirty_lost ledger, keeping the conservation law exact.
  auto rt = MakeRuntime(CachePolicyKind::kLru, HierarchyMode::kInclusive,
                        WritePolicy::kWriteBack);
  std::mt19937_64 rng(99);
  for (int i = 0; i < 4000; ++i) {
    Step(*rt, rng, 0.5);
    if (i % 500 == 499) {
      rt->InvalidateNode({0, static_cast<uint32_t>(rng() % kSpines)});
      CheckDirtyConservation(*rt);
    }
  }
  CheckDirtyConservation(*rt);
  EXPECT_GT(rt->counters().dirty_created, 0u);
  EXPECT_GT(rt->counters().dirty_lost, 0u);
  EXPECT_GT(rt->counters().writebacks, 0u);
}

TEST_F(PolicyRuntimeTest, ProbeIsPure) {
  // A thousand probes on a warmed-up runtime must not change any cache.
  auto rt = MakeRuntime(CachePolicyKind::kLru, HierarchyMode::kInclusive,
                        WritePolicy::kWriteThrough);
  std::mt19937_64 rng(7);
  for (int i = 0; i < 2000; ++i) {
    Step(*rt, rng, 0.0);
  }
  std::vector<std::map<uint64_t, bool>> before;
  for (size_t l = 0; l < rt->num_layers(); ++l) {
    for (uint32_t n = 0; n < rt->layer_nodes(l); ++n) {
      before.push_back(Contents(rt->node_cache(l, n)));
    }
  }
  const auto counters_before = rt->counters();
  for (uint64_t key = 0; key < 1000; ++key) {
    rt->Probe(key);
  }
  size_t idx = 0;
  for (size_t l = 0; l < rt->num_layers(); ++l) {
    for (uint32_t n = 0; n < rt->layer_nodes(l); ++n) {
      EXPECT_EQ(before[idx++], Contents(rt->node_cache(l, n)));
    }
  }
  EXPECT_EQ(counters_before.admissions, rt->counters().admissions);
  EXPECT_EQ(counters_before.evictions, rt->counters().evictions);
}

TEST_F(PolicyRuntimeTest, DeadSpineIsSkippedAndWipedCopiesRewarm) {
  auto rt = MakeRuntime(CachePolicyKind::kLru, HierarchyMode::kInclusive,
                        WritePolicy::kWriteThrough);
  std::mt19937_64 rng(11);
  for (int i = 0; i < 2000; ++i) {
    Step(*rt, rng, 0.0);
  }
  // Fail spine 0 the way the engine does: mark dead, wipe its cache.
  spine_alive_[0] = 0;
  rt->InvalidateNode({0, 0});
  EXPECT_EQ(rt->node_cache(0, 0).size(), 0u);
  // Probes for keys whose spine candidate is node 0 must skip to the leaf.
  for (uint64_t key = 0; key < 500; ++key) {
    const auto probe = rt->Probe(key);
    if (probe.hit) {
      EXPECT_TRUE(probe.node.layer != 0 || probe.node.index != 0);
    }
  }
  // Recovery: alive again, cold; lower-layer hits refill it via FillUpward.
  spine_alive_[0] = 1;
  for (int i = 0; i < 2000; ++i) {
    Step(*rt, rng, 0.0);
  }
  EXPECT_GT(rt->node_cache(0, 0).size(), 0u);
  CheckInclusive(*rt);
}

}  // namespace
}  // namespace distcache
