#include "core/consistent_hash.h"

#include <gtest/gtest.h>

#include <map>

namespace distcache {
namespace {

TEST(ConsistentHashRing, EmptyRingReturnsNothing) {
  ConsistentHashRing ring;
  EXPECT_FALSE(ring.NodeFor(1).has_value());
}

TEST(ConsistentHashRing, SingleNodeOwnsEverything) {
  ConsistentHashRing ring;
  ring.AddNode(7);
  for (uint64_t k = 0; k < 100; ++k) {
    EXPECT_EQ(ring.NodeFor(k).value(), 7u);
  }
}

TEST(ConsistentHashRing, AddRemoveIdempotent) {
  ConsistentHashRing ring;
  ring.AddNode(1);
  ring.AddNode(1);
  EXPECT_EQ(ring.size(), 1u);
  ring.RemoveNode(1);
  ring.RemoveNode(1);
  EXPECT_EQ(ring.size(), 0u);
}

TEST(ConsistentHashRing, KeysSpreadOverNodes) {
  ConsistentHashRing ring(64);
  for (uint32_t n = 0; n < 8; ++n) {
    ring.AddNode(n);
  }
  std::map<uint32_t, int> counts;
  constexpr int kKeys = 8000;
  for (uint64_t k = 0; k < kKeys; ++k) {
    ++counts[ring.NodeFor(k).value()];
  }
  EXPECT_EQ(counts.size(), 8u);
  for (const auto& [node, count] : counts) {
    EXPECT_GT(count, kKeys / 8 / 3) << "node " << node;
    EXPECT_LT(count, kKeys / 8 * 3) << "node " << node;
  }
}

TEST(ConsistentHashRing, RemovalOnlyMovesVictimsKeys) {
  ConsistentHashRing ring(64);
  for (uint32_t n = 0; n < 8; ++n) {
    ring.AddNode(n);
  }
  std::map<uint64_t, uint32_t> before;
  for (uint64_t k = 0; k < 2000; ++k) {
    before[k] = ring.NodeFor(k).value();
  }
  ring.RemoveNode(3);
  for (uint64_t k = 0; k < 2000; ++k) {
    const uint32_t now = ring.NodeFor(k).value();
    if (before[k] != 3) {
      EXPECT_EQ(now, before[k]) << "key " << k << " moved unnecessarily";
    } else {
      EXPECT_NE(now, 3u);
    }
  }
}

TEST(ConsistentHashRing, ReAddRestoresOwnership) {
  ConsistentHashRing ring(64);
  for (uint32_t n = 0; n < 4; ++n) {
    ring.AddNode(n);
  }
  std::map<uint64_t, uint32_t> before;
  for (uint64_t k = 0; k < 500; ++k) {
    before[k] = ring.NodeFor(k).value();
  }
  ring.RemoveNode(2);
  ring.AddNode(2);
  for (uint64_t k = 0; k < 500; ++k) {
    EXPECT_EQ(ring.NodeFor(k).value(), before[k]);
  }
}

TEST(ConsistentHashRing, FailedNodeLoadSpreadsAcrossSurvivors) {
  // §4.4: virtual nodes spread a failed switch's partitions, not dogpile one node.
  ConsistentHashRing ring(64);
  for (uint32_t n = 0; n < 8; ++n) {
    ring.AddNode(n);
  }
  std::map<uint64_t, uint32_t> before;
  for (uint64_t k = 0; k < 4000; ++k) {
    before[k] = ring.NodeFor(k).value();
  }
  ring.RemoveNode(0);
  std::map<uint32_t, int> inherited;
  for (const auto& [k, owner] : before) {
    if (owner == 0) {
      ++inherited[ring.NodeFor(k).value()];
    }
  }
  EXPECT_GE(inherited.size(), 4u) << "failed node's keys should spread widely";
}

TEST(ConsistentHashRing, ContainsTracksMembership) {
  ConsistentHashRing ring;
  EXPECT_FALSE(ring.Contains(1));
  ring.AddNode(1);
  EXPECT_TRUE(ring.Contains(1));
}

}  // namespace
}  // namespace distcache
