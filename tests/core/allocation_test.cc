#include "core/allocation.h"

#include <gtest/gtest.h>

#include <set>

namespace distcache {
namespace {

AllocationConfig BaseConfig(Mechanism m) {
  return AllocationConfig::TwoLayer(m, /*num_spine=*/8, /*num_racks=*/8,
                                    /*per_switch_objects=*/10);
}

Placement BasePlacement() { return Placement(8, 4); }

TEST(CacheAllocation, NoCacheCachesNothing) {
  CacheAllocation alloc(BaseConfig(Mechanism::kNoCache), BasePlacement());
  EXPECT_EQ(alloc.num_cached_keys(), 0u);
  EXPECT_FALSE(alloc.CopiesOf(0).cached());
  for (const auto& contents : alloc.spine_contents()) {
    EXPECT_TRUE(contents.empty());
  }
}

TEST(CacheAllocation, CachePartitionIsLeafOnly) {
  CacheAllocation alloc(BaseConfig(Mechanism::kCachePartition), BasePlacement());
  for (const auto& contents : alloc.spine_contents()) {
    EXPECT_TRUE(contents.empty());
  }
  size_t leaf_total = 0;
  for (const auto& contents : alloc.leaf_contents()) {
    EXPECT_EQ(contents.size(), 10u);
    leaf_total += contents.size();
  }
  EXPECT_EQ(leaf_total, 80u);
  const CacheCopies c = alloc.CopiesOf(alloc.leaf_contents()[0][0]);
  EXPECT_TRUE(c.leaf().has_value());
  EXPECT_FALSE(c.spine().has_value());
  EXPECT_FALSE(c.replicated_all_spines);
  EXPECT_EQ(c.NumCopies(8), 1u);
}

TEST(CacheAllocation, ReplicationPutsSameContentInEverySpine) {
  CacheAllocation alloc(BaseConfig(Mechanism::kCacheReplication), BasePlacement());
  const auto& spine = alloc.spine_contents();
  for (uint32_t s = 1; s < 8; ++s) {
    EXPECT_EQ(spine[s], spine[0]);
  }
  ASSERT_EQ(spine[0].size(), 10u);
  // Replicated objects are the globally hottest (ranks 0..9).
  for (uint64_t k = 0; k < 10; ++k) {
    const CacheCopies c = alloc.CopiesOf(k);
    EXPECT_TRUE(c.replicated_all_spines) << k;
    EXPECT_EQ(c.NumCopies(8), c.leaf() ? 9u : 8u);
  }
}

TEST(CacheAllocation, DistCacheSpinePartitionedByH0) {
  CacheAllocation alloc(BaseConfig(Mechanism::kDistCache), BasePlacement());
  std::set<uint64_t> seen;
  for (uint32_t s = 0; s < 8; ++s) {
    const auto& contents = alloc.spine_contents()[s];
    EXPECT_EQ(contents.size(), 10u) << "spine " << s;
    for (uint64_t key : contents) {
      EXPECT_EQ(alloc.SpinePartitionOf(key), s);
      EXPECT_TRUE(seen.insert(key).second) << "duplicate spine copy of " << key;
    }
  }
}

TEST(CacheAllocation, DistCacheHotKeysHaveTwoCopies) {
  CacheAllocation alloc(BaseConfig(Mechanism::kDistCache), BasePlacement());
  // The globally hottest keys should be cached in both layers (they are at the top
  // of both their rack's and their spine partition's rankings).
  int both = 0;
  for (uint64_t k = 0; k < 10; ++k) {
    const CacheCopies c = alloc.CopiesOf(k);
    if (c.spine() && c.leaf()) {
      ++both;
      EXPECT_EQ(c.NumCopies(8), 2u);
    }
  }
  EXPECT_GE(both, 8);  // hash imbalance may push out a straggler
}

TEST(CacheAllocation, ContentsConsistentWithCopiesOf) {
  CacheAllocation alloc(BaseConfig(Mechanism::kDistCache), BasePlacement());
  for (uint32_t s = 0; s < 8; ++s) {
    for (uint64_t key : alloc.spine_contents()[s]) {
      const CacheCopies c = alloc.CopiesOf(key);
      ASSERT_TRUE(c.spine().has_value());
      EXPECT_EQ(*c.spine(), s);
    }
  }
  for (uint32_t l = 0; l < 8; ++l) {
    for (uint64_t key : alloc.leaf_contents()[l]) {
      const CacheCopies c = alloc.CopiesOf(key);
      ASSERT_TRUE(c.leaf().has_value());
      EXPECT_EQ(*c.leaf(), l);
    }
  }
}

TEST(CacheAllocation, LeafCopyMatchesPlacementRack) {
  const Placement placement = BasePlacement();
  CacheAllocation alloc(BaseConfig(Mechanism::kDistCache), placement);
  for (uint32_t l = 0; l < 8; ++l) {
    for (uint64_t key : alloc.leaf_contents()[l]) {
      EXPECT_EQ(placement.RackOf(key), l);
    }
  }
}

TEST(CacheAllocation, KeysBeyondPoolAreUncached) {
  CacheAllocation alloc(BaseConfig(Mechanism::kDistCache), BasePlacement());
  EXPECT_FALSE(alloc.CopiesOf(alloc.candidate_pool() + 5).cached());
}

TEST(CacheAllocation, RemapMovesPartitionToTargetSwitch) {
  CacheAllocation alloc(BaseConfig(Mechanism::kDistCache), BasePlacement());
  const auto original = alloc.spine_contents();
  // Move partition 0's objects onto switch 3.
  std::vector<uint32_t> remap{3, 1, 2, 3, 4, 5, 6, 7};
  alloc.RemapSpine(remap);
  const auto& remapped = alloc.spine_contents();
  EXPECT_TRUE(remapped[0].empty());
  EXPECT_EQ(remapped[3].size(), original[3].size() + original[0].size());
  for (uint64_t key : original[0]) {
    const CacheCopies c = alloc.CopiesOf(key);
    ASSERT_TRUE(c.spine().has_value());
    EXPECT_EQ(*c.spine(), 3u);
  }
}

TEST(CacheAllocation, RemapPreservesAllCachedObjects) {
  CacheAllocation alloc(BaseConfig(Mechanism::kDistCache), BasePlacement());
  const size_t before = alloc.num_cached_keys();
  std::vector<uint32_t> remap{7, 7, 2, 3, 4, 5, 6, 7};
  alloc.RemapSpine(remap);
  size_t spine_total = 0;
  for (const auto& contents : alloc.spine_contents()) {
    spine_total += contents.size();
  }
  EXPECT_EQ(spine_total, 80u);  // nothing lost
  EXPECT_EQ(alloc.num_cached_keys(), before);
}

TEST(CacheAllocation, AutoPoolScalesWithBudget) {
  AllocationConfig cfg = BaseConfig(Mechanism::kDistCache);
  CacheAllocation alloc(cfg, BasePlacement());
  EXPECT_EQ(alloc.candidate_pool(), 8u * 10u * 16u);
}

// Refill re-allocates onto an explicit hottest-first key list: the listed keys
// are cached at their true rack/partition, the old hot set is evicted, and any
// spine remap in effect survives.
TEST(CacheAllocation, RefillMovesCacheToObservedHotSet) {
  CacheAllocation alloc(BaseConfig(Mechanism::kDistCache), BasePlacement());
  ASSERT_TRUE(alloc.CopiesOf(0).cached());  // identity hot set: rank 0 cached
  std::vector<uint64_t> hottest;
  for (uint64_t rank = 0; rank < alloc.candidate_pool(); ++rank) {
    hottest.push_back(rank + 1'000'000);  // an entirely new hot set
  }
  alloc.Refill(hottest, BasePlacement());
  EXPECT_FALSE(alloc.CopiesOf(0).cached());  // old hot keys evicted
  EXPECT_TRUE(alloc.CopiesOf(1'000'000).cached());  // new rank-0 key cached
  EXPECT_EQ(alloc.KeyOfRank(0), 1'000'000u);
  EXPECT_GT(alloc.num_cached_keys(), 0u);
}

// An *empty* observed list is a refill that caches nothing — not a silent
// revert to the identity mapping (regression guard: a kReallocateCache firing
// before any key was observed twice must empty the cache, not repopulate the
// pre-shift one).
TEST(CacheAllocation, RefillWithEmptyObservationsCachesNothing) {
  CacheAllocation alloc(BaseConfig(Mechanism::kDistCache), BasePlacement());
  ASSERT_GT(alloc.num_cached_keys(), 0u);
  alloc.Refill({}, BasePlacement());
  EXPECT_EQ(alloc.num_cached_keys(), 0u);
  EXPECT_FALSE(alloc.CopiesOf(0).cached());
  for (const auto& contents : alloc.spine_contents()) {
    EXPECT_TRUE(contents.empty());
  }
}

}  // namespace
}  // namespace distcache
