#include "core/controller.h"

#include <gtest/gtest.h>

#include <set>

namespace distcache {
namespace {

class ControllerTest : public ::testing::Test {
 protected:
  ControllerTest() : placement_(8, 4) {
    const AllocationConfig cfg = AllocationConfig::TwoLayer(
        Mechanism::kDistCache, /*num_spine=*/8, /*num_racks=*/8,
        /*per_switch_objects=*/10);
    allocation_ = std::make_unique<CacheAllocation>(cfg, placement_);
    controller_ = std::make_unique<CacheController>(allocation_.get(), 8);
  }

  Placement placement_;
  std::unique_ptr<CacheAllocation> allocation_;
  std::unique_ptr<CacheController> controller_;
};

TEST_F(ControllerTest, StartsWithIdentityMapping) {
  for (uint32_t p = 0; p < 8; ++p) {
    EXPECT_EQ(controller_->spine_of_partition()[p], p);
    EXPECT_TRUE(controller_->IsAlive(p));
  }
  EXPECT_EQ(controller_->num_alive(), 8u);
}

TEST_F(ControllerTest, FailureRemapsToAliveSwitch) {
  controller_->OnSpineFailure(2);
  EXPECT_FALSE(controller_->IsAlive(2));
  EXPECT_EQ(controller_->num_alive(), 7u);
  const uint32_t target = controller_->spine_of_partition()[2];
  EXPECT_NE(target, 2u);
  EXPECT_TRUE(controller_->IsAlive(target));
  // Allocation reflects the remap: partition 2's objects live on `target` now.
  EXPECT_TRUE(allocation_->spine_contents()[2].empty());
}

TEST_F(ControllerTest, HealthyPartitionsStayHome) {
  controller_->OnSpineFailure(2);
  for (uint32_t p = 0; p < 8; ++p) {
    if (p != 2) {
      EXPECT_EQ(controller_->spine_of_partition()[p], p);
    }
  }
}

TEST_F(ControllerTest, MultipleFailuresSpread) {
  controller_->OnSpineFailure(0);
  controller_->OnSpineFailure(1);
  controller_->OnSpineFailure(2);
  std::set<uint32_t> targets;
  for (uint32_t p : {0u, 1u, 2u}) {
    const uint32_t t = controller_->spine_of_partition()[p];
    EXPECT_TRUE(controller_->IsAlive(t));
    targets.insert(t);
  }
  EXPECT_GE(targets.size(), 2u);  // consistent hashing should not dogpile one switch
}

TEST_F(ControllerTest, RecoveryRestoresIdentity) {
  controller_->OnSpineFailure(3);
  controller_->OnSpineRecovery(3);
  EXPECT_TRUE(controller_->IsAlive(3));
  EXPECT_EQ(controller_->spine_of_partition()[3], 3u);
  EXPECT_EQ(allocation_->spine_contents()[3].size(), 10u);
}

TEST_F(ControllerTest, DuplicateEventsAreNoOps) {
  controller_->OnSpineFailure(3);
  controller_->OnSpineFailure(3);
  EXPECT_EQ(controller_->num_alive(), 7u);
  controller_->OnSpineRecovery(3);
  controller_->OnSpineRecovery(3);
  EXPECT_EQ(controller_->num_alive(), 8u);
}

TEST_F(ControllerTest, LastAliveSwitchCannotFail) {
  for (uint32_t s = 0; s < 7; ++s) {
    controller_->OnSpineFailure(s);
  }
  EXPECT_EQ(controller_->num_alive(), 1u);
  controller_->OnSpineFailure(7);  // refused
  EXPECT_TRUE(controller_->IsAlive(7));
  EXPECT_EQ(controller_->num_alive(), 1u);
}

TEST_F(ControllerTest, ListenerNotifiedOnRemap) {
  int calls = 0;
  controller_->set_remap_listener(
      [&](const std::vector<uint32_t>& map) {
        ++calls;
        EXPECT_EQ(map.size(), 8u);
      });
  controller_->OnSpineFailure(1);
  controller_->OnSpineRecovery(1);
  EXPECT_EQ(calls, 2);
}

TEST_F(ControllerTest, OutOfRangeIgnored) {
  controller_->OnSpineFailure(99);
  EXPECT_EQ(controller_->num_alive(), 8u);
}

}  // namespace
}  // namespace distcache
