// Property sweep over mechanisms, shapes and budgets: structural invariants of the
// cache allocation that every configuration must satisfy.
#include <gtest/gtest.h>

#include <set>
#include <tuple>

#include "core/allocation.h"

namespace distcache {
namespace {

using Param = std::tuple<Mechanism, uint32_t /*spine*/, uint32_t /*racks*/,
                         uint32_t /*per_switch*/>;

class AllocationPropertyTest : public ::testing::TestWithParam<Param> {};

TEST_P(AllocationPropertyTest, StructuralInvariants) {
  const auto [mechanism, num_spine, num_racks, per_switch] = GetParam();
  const AllocationConfig cfg =
      AllocationConfig::TwoLayer(mechanism, num_spine, num_racks, per_switch);
  Placement placement(num_racks, 4);
  CacheAllocation alloc(cfg, placement);

  // 1. Per-switch budgets are never exceeded.
  for (const auto& contents : alloc.leaf_contents()) {
    EXPECT_LE(contents.size(), per_switch);
  }
  for (const auto& contents : alloc.spine_contents()) {
    EXPECT_LE(contents.size(), per_switch);
  }

  // 2. Leaf budgets are fully used when caching is on (the candidate pool is large
  //    enough that every rack has per_switch hot keys).
  if (mechanism != Mechanism::kNoCache) {
    for (const auto& contents : alloc.leaf_contents()) {
      EXPECT_EQ(contents.size(), per_switch);
    }
  }

  // 3. No key appears twice within a layer (at most one copy per layer, §3.1 —
  //    replication is the deliberate exception on the spine layer).
  std::set<uint64_t> leaf_seen;
  for (const auto& contents : alloc.leaf_contents()) {
    for (uint64_t key : contents) {
      EXPECT_TRUE(leaf_seen.insert(key).second) << key;
    }
  }
  if (mechanism == Mechanism::kDistCache) {
    std::set<uint64_t> spine_seen;
    for (const auto& contents : alloc.spine_contents()) {
      for (uint64_t key : contents) {
        EXPECT_TRUE(spine_seen.insert(key).second) << key;
      }
    }
  }

  // 4. CopiesOf is consistent: every key in contents reports the hosting switch,
  //    and cached() keys are exactly the union of the contents.
  size_t contents_union = 0;
  {
    std::set<uint64_t> all;
    for (const auto& contents : alloc.leaf_contents()) {
      all.insert(contents.begin(), contents.end());
    }
    for (const auto& contents : alloc.spine_contents()) {
      all.insert(contents.begin(), contents.end());
    }
    contents_union = all.size();
    for (uint64_t key : all) {
      EXPECT_TRUE(alloc.CopiesOf(key).cached());
    }
  }
  EXPECT_EQ(alloc.num_cached_keys(), contents_union);

  // 5. Write copy counts: at most 1 per layer, except spine replication.
  for (uint64_t key = 0; key < 64; ++key) {
    const CacheCopies copies = alloc.CopiesOf(key);
    const size_t n = copies.NumCopies(num_spine);
    switch (mechanism) {
      case Mechanism::kNoCache:
        EXPECT_EQ(n, 0u);
        break;
      case Mechanism::kCachePartition:
        EXPECT_LE(n, 1u);
        break;
      case Mechanism::kDistCache:
        EXPECT_LE(n, 2u);
        break;
      case Mechanism::kCacheReplication:
        if (copies.replicated_all_spines) {
          EXPECT_GE(n, num_spine);
        }
        break;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, AllocationPropertyTest,
    ::testing::Combine(::testing::Values(Mechanism::kNoCache, Mechanism::kCachePartition,
                                         Mechanism::kCacheReplication,
                                         Mechanism::kDistCache),
                       ::testing::Values(4u, 16u),   // spine switches
                       ::testing::Values(4u, 16u),   // racks
                       ::testing::Values(5u, 50u))); // objects per switch

}  // namespace
}  // namespace distcache
