#include "core/load_tracker.h"

#include <gtest/gtest.h>

#include <cmath>

namespace distcache {
namespace {

LoadTracker::Config SmallConfig(double aging = 0.5) {
  return LoadTracker::Config{{4, 4}, aging};
}

TEST(LoadTracker, StartsAtZero) {
  LoadTracker t(SmallConfig());
  EXPECT_EQ(t.Load({0, 2}), 0.0);
  EXPECT_EQ(t.Load({1, 3}), 0.0);
}

TEST(LoadTracker, UpdateStoresPerLayer) {
  LoadTracker t(SmallConfig());
  t.Update({0, 1}, 100);
  t.Update({1, 1}, 50);
  EXPECT_EQ(t.Load({0, 1}), 100.0);
  EXPECT_EQ(t.Load({1, 1}), 50.0);
}

TEST(LoadTracker, OutOfRangeUpdateIgnored) {
  LoadTracker t(SmallConfig());
  t.Update({0, 99}, 7);
  for (uint32_t i = 0; i < 4; ++i) {
    EXPECT_EQ(t.Load({0, i}), 0.0);
  }
}

TEST(LoadTracker, AgingDecaysStaleEntries) {
  LoadTracker t(SmallConfig(0.5));
  t.Update({0, 0}, 80);
  t.Age();  // entry was fresh this epoch: no decay on the first boundary
  EXPECT_EQ(t.Load({0, 0}), 80.0);
  t.Age();  // no refresh since: decays
  EXPECT_EQ(t.Load({0, 0}), 40.0);
  t.Age();
  EXPECT_EQ(t.Load({0, 0}), 20.0);
}

TEST(LoadTracker, RefreshPreventsDecay) {
  LoadTracker t(SmallConfig(0.5));
  t.Update({0, 0}, 80);
  t.Age();
  t.Update({0, 0}, 60);
  t.Age();
  EXPECT_EQ(t.Load({0, 0}), 60.0);
}

TEST(LoadTracker, AgingFactorOneDisablesDecay) {
  LoadTracker t(SmallConfig(1.0));
  t.Update({1, 2}, 30);
  t.Age();
  t.Age();
  EXPECT_EQ(t.Load({1, 2}), 30.0);
}

TEST(LoadTracker, ResetClearsEverything) {
  LoadTracker t(SmallConfig());
  t.Update({0, 1}, 10);
  t.Update({1, 2}, 20);
  t.Reset();
  EXPECT_EQ(t.Load({0, 1}), 0.0);
  EXPECT_EQ(t.Load({1, 2}), 0.0);
}

TEST(LoadTracker, VectorsExposeLayers) {
  LoadTracker t(SmallConfig());
  t.Update({0, 3}, 5);
  EXPECT_EQ(t.spine_loads()[3], 5.0);
  EXPECT_EQ(t.leaf_loads()[3], 0.0);
}

// Dead-node aging (§4.4): a failed switch's entry must lose every PoT comparison
// instead of freezing at a stale — eventually minimal — value (invariant 3).
TEST(LoadTracker, MarkDeadPinsLoadToInfinity) {
  LoadTracker t(SmallConfig());
  t.Update({0, 1}, 40);
  t.MarkDead({0, 1});
  EXPECT_TRUE(t.IsDead({0, 1}));
  EXPECT_TRUE(std::isinf(t.Load({0, 1})));
  t.MarkDead({0, 1});  // idempotent: the shadow must not absorb the +inf
  t.MarkAlive({0, 1});
  EXPECT_FALSE(t.IsDead({0, 1}));
  EXPECT_EQ(t.Load({0, 1}), 40.0);
}

TEST(LoadTracker, DeadNodeAbsorbsTelemetryIntoShadow) {
  LoadTracker t(SmallConfig());
  t.Update({1, 2}, 10);
  t.MarkDead({1, 2});
  // Late telemetry / gossip folds keep updating the hidden estimate...
  t.Add({1, 2}, 5.0);
  t.Set({1, 2}, 25.0);
  EXPECT_TRUE(std::isinf(t.Load({1, 2})));  // ...without unpinning the entry.
  t.MarkAlive({1, 2});
  EXPECT_EQ(t.Load({1, 2}), 25.0);
}

TEST(LoadTracker, AgingSkipsDeadEntries) {
  LoadTracker t(SmallConfig(0.0));  // full decay would turn inf into NaN via 0*inf
  t.Update({0, 0}, 80);
  t.MarkDead({0, 0});
  t.Age();
  t.Age();
  EXPECT_TRUE(std::isinf(t.Load({0, 0})));
  t.MarkAlive({0, 0});
  EXPECT_EQ(t.Load({0, 0}), 80.0);
}

TEST(LoadTracker, ResetClearsDeadPins) {
  LoadTracker t(SmallConfig());
  t.Update({0, 1}, 10);
  t.MarkDead({0, 1});
  t.Reset();
  EXPECT_FALSE(t.IsDead({0, 1}));
  EXPECT_EQ(t.Load({0, 1}), 0.0);
}

}  // namespace
}  // namespace distcache
