// Failure injection on the two-phase coherence protocol: the resolver (the network)
// drops a configurable number of attempts before a switch becomes reachable,
// exercising the paper's timeout-and-resend behaviour (§4.3).
#include <gtest/gtest.h>

#include <memory>

#include "core/coherence.h"

namespace distcache {
namespace {

class FlakyCoherenceTest : public ::testing::Test {
 protected:
  FlakyCoherenceTest() : server_(StorageServer::Config{0, 1.0}) {
    CacheSwitch::Config cfg;
    cfg.hh.sketch.width = 256;
    cfg.hh.bloom.bits = 1024;
    sw_ = std::make_unique<CacheSwitch>(cfg);
    server_.Seed(1, "old").ok();
    sw_->InsertInvalid(1, 16).ok();
    sw_->UpdateValue(1, "old").ok();
  }

  std::unique_ptr<TwoPhaseCoherence> MakeCoherence(int failures_before_success,
                                                   size_t max_retries) {
    remaining_failures_ = failures_before_success;
    TwoPhaseCoherence::Config cfg;
    cfg.max_retries = max_retries;
    return std::make_unique<TwoPhaseCoherence>(
        [this](CacheNodeId) -> CacheSwitch* {
          if (remaining_failures_ > 0) {
            --remaining_failures_;
            return nullptr;
          }
          return sw_.get();
        },
        cfg);
  }

  StorageServer server_;
  std::unique_ptr<CacheSwitch> sw_;
  int remaining_failures_ = 0;
};

TEST_F(FlakyCoherenceTest, RetriesUntilSwitchReachable) {
  auto coherence = MakeCoherence(/*failures_before_success=*/2, /*max_retries=*/3);
  ASSERT_TRUE(coherence->Write(1, "new", &server_, {{1, 0}}).ok());
  EXPECT_EQ(coherence->stats().retries, 2u);
  EXPECT_EQ(coherence->stats().unreachable_copies, 0u);
  std::string v;
  EXPECT_EQ(sw_->Lookup(1, &v), LookupResult::kHit);
  EXPECT_EQ(v, "new");
}

TEST_F(FlakyCoherenceTest, GivesUpAfterMaxRetriesButPrimaryWins) {
  auto coherence = MakeCoherence(/*failures_before_success=*/100, /*max_retries=*/2);
  ASSERT_TRUE(coherence->Write(1, "new", &server_, {{1, 0}}).ok());
  EXPECT_GT(coherence->stats().unreachable_copies, 0u);
  // Primary has the new value; the cached copy was already invalid from an earlier
  // phase or stays stale-but-invalid — readers fall through to the server.
  EXPECT_EQ(server_.store().Get(1).value(), "new");
}

TEST_F(FlakyCoherenceTest, PhaseOneFailurePhaseTwoSucceeds) {
  // First phase exhausts the failures; phase 2 finds the switch reachable.
  auto coherence = MakeCoherence(/*failures_before_success=*/3, /*max_retries=*/3);
  ASSERT_TRUE(coherence->Write(1, "new", &server_, {{1, 0}}).ok());
  std::string v;
  EXPECT_EQ(sw_->Lookup(1, &v), LookupResult::kHit);
  EXPECT_EQ(v, "new");  // phase 2 repaired the copy
}

TEST_F(FlakyCoherenceTest, StatsDistinguishRetryFromUnreachable) {
  auto retried = MakeCoherence(1, 3);
  retried->Write(1, "a", &server_, {{1, 0}}).ok();
  EXPECT_EQ(retried->stats().retries, 1u);
  EXPECT_EQ(retried->stats().unreachable_copies, 0u);

  auto dead = MakeCoherence(1000, 1);
  dead->Write(1, "b", &server_, {{1, 0}}).ok();
  EXPECT_EQ(dead->stats().unreachable_copies, 2u);  // both phases gave up
}

}  // namespace
}  // namespace distcache
