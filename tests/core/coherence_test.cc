#include "core/coherence.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

namespace distcache {
namespace {

class CoherenceTest : public ::testing::Test {
 protected:
  CoherenceTest() : server_(StorageServer::Config{0, 1.0}) {
    CacheSwitch::Config cfg;
    cfg.hh.sketch.width = 512;
    cfg.hh.bloom.bits = 2048;
    spine_ = std::make_unique<CacheSwitch>(cfg);
    leaf_ = std::make_unique<CacheSwitch>(cfg);
    coherence_ = std::make_unique<TwoPhaseCoherence>(
        [this](CacheNodeId node) -> CacheSwitch* {
          if (fail_all_) {
            return nullptr;
          }
          return node.layer == 0 ? spine_.get() : leaf_.get();
        },
        TwoPhaseCoherence::Config{});
    server_.Seed(1, "old").ok();
    for (CacheSwitch* sw : {spine_.get(), leaf_.get()}) {
      sw->InsertInvalid(1, 16).ok();
      sw->UpdateValue(1, "old").ok();
    }
  }

  StorageServer server_;
  std::unique_ptr<CacheSwitch> spine_;
  std::unique_ptr<CacheSwitch> leaf_;
  std::unique_ptr<TwoPhaseCoherence> coherence_;
  bool fail_all_ = false;
  const std::vector<CacheNodeId> copies_{{0, 0}, {1, 0}};
};

TEST_F(CoherenceTest, UncachedWriteSkipsProtocol) {
  ASSERT_TRUE(coherence_->Write(2, "v", &server_, {}).ok());
  EXPECT_EQ(coherence_->stats().writes, 1u);
  EXPECT_EQ(coherence_->stats().cached_writes, 0u);
  EXPECT_EQ(coherence_->stats().invalidations_sent, 0u);
  EXPECT_EQ(server_.store().Get(2).value(), "v");
}

TEST_F(CoherenceTest, CachedWriteUpdatesEveryCopy) {
  ASSERT_TRUE(coherence_->Write(1, "new", &server_, copies_).ok());
  EXPECT_EQ(server_.store().Get(1).value(), "new");
  std::string v;
  EXPECT_EQ(spine_->Lookup(1, &v), LookupResult::kHit);
  EXPECT_EQ(v, "new");
  EXPECT_EQ(leaf_->Lookup(1, &v), LookupResult::kHit);
  EXPECT_EQ(v, "new");
}

TEST_F(CoherenceTest, StatsCountPhases) {
  coherence_->Write(1, "new", &server_, copies_).ok();
  const auto& stats = coherence_->stats();
  EXPECT_EQ(stats.writes, 1u);
  EXPECT_EQ(stats.cached_writes, 1u);
  EXPECT_EQ(stats.invalidations_sent, 2u);
  EXPECT_EQ(stats.updates_sent, 2u);
  EXPECT_EQ(stats.unreachable_copies, 0u);
}

TEST_F(CoherenceTest, ServerChargedPerCopy) {
  coherence_->Write(1, "new", &server_, copies_).ok();
  EXPECT_DOUBLE_EQ(server_.load(), 1.0 + 2.0);  // default unit cost 1.0 per copy
}

TEST_F(CoherenceTest, SwitchTelemetryChargedPerPhase) {
  coherence_->Write(1, "new", &server_, copies_).ok();
  EXPECT_EQ(spine_->TelemetryLoad(), 2u);  // invalidate + update
  EXPECT_EQ(leaf_->TelemetryLoad(), 2u);
}

TEST_F(CoherenceTest, UnreachableCopiesRetriedThenSkipped) {
  fail_all_ = true;
  ASSERT_TRUE(coherence_->Write(1, "new", &server_, copies_).ok());
  EXPECT_EQ(server_.store().Get(1).value(), "new");  // primary still updated
  const auto& stats = coherence_->stats();
  EXPECT_GT(stats.retries, 0u);
  EXPECT_EQ(stats.unreachable_copies, 4u);  // 2 copies x 2 phases
}

TEST_F(CoherenceTest, PopulatePushesServerValue) {
  server_.Seed(3, "seeded").ok();
  spine_->InsertInvalid(3, 16).ok();
  ASSERT_TRUE(coherence_->Populate(3, &server_, {0, 0}).ok());
  std::string v;
  EXPECT_EQ(spine_->Lookup(3, &v), LookupResult::kHit);
  EXPECT_EQ(v, "seeded");
}

TEST_F(CoherenceTest, PopulateMissingKeyFails) {
  EXPECT_EQ(coherence_->Populate(99, &server_, {0, 0}).code(), StatusCode::kNotFound);
}

TEST_F(CoherenceTest, PopulateUnreachableSwitchFails) {
  server_.Seed(4, "x").ok();
  fail_all_ = true;
  EXPECT_EQ(coherence_->Populate(4, &server_, {0, 0}).code(), StatusCode::kUnavailable);
}

TEST_F(CoherenceTest, ResetStatsClears) {
  coherence_->Write(1, "new", &server_, copies_).ok();
  coherence_->ResetStats();
  EXPECT_EQ(coherence_->stats().writes, 0u);
}

}  // namespace
}  // namespace distcache
