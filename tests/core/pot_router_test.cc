#include "core/pot_router.h"

#include <gtest/gtest.h>

namespace distcache {
namespace {

TEST(PotRouter, SingleCandidateAlwaysChosen) {
  LoadTracker t({{4, 4}, 1.0});
  PotRouter router(&t, RoutingPolicy::kPowerOfTwo, 1);
  EXPECT_EQ(router.Choose({{0, 1}}), 0u);
}

TEST(PotRouter, PicksLessLoaded) {
  LoadTracker t({{4, 4}, 1.0});
  t.Update({0, 0}, 100);
  t.Update({1, 0}, 10);
  PotRouter router(&t, RoutingPolicy::kPowerOfTwo, 2);
  const std::vector<CacheNodeId> candidates{{0, 0}, {1, 0}};
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(router.Choose(candidates), 1u);
  }
  t.Update({1, 0}, 500);
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(router.Choose(candidates), 0u);
  }
}

TEST(PotRouter, TiesBrokenRoughlyEvenly) {
  LoadTracker t({{4, 4}, 1.0});
  t.Update({0, 0}, 50);
  t.Update({1, 0}, 50);
  PotRouter router(&t, RoutingPolicy::kPowerOfTwo, 3);
  const std::vector<CacheNodeId> candidates{{0, 0}, {1, 0}};
  int first = 0;
  constexpr int kTrials = 10000;
  for (int i = 0; i < kTrials; ++i) {
    first += router.Choose(candidates) == 0 ? 1 : 0;
  }
  EXPECT_NEAR(static_cast<double>(first) / kTrials, 0.5, 0.05);
}

TEST(PotRouter, PowerOfKChoosesGlobalMinimum) {
  // §3.1: multi-layer hierarchies use power-of-k-choices.
  LoadTracker t({{8, 8}, 1.0});
  t.Update({0, 0}, 30);
  t.Update({0, 1}, 20);
  t.Update({1, 2}, 10);
  t.Update({1, 3}, 40);
  PotRouter router(&t, RoutingPolicy::kPowerOfTwo, 4);
  const std::vector<CacheNodeId> candidates{{0, 0}, {0, 1}, {1, 2}, {1, 3}};
  EXPECT_EQ(router.Choose(candidates), 2u);
}

// k-ary tie break (invariant 3 at k > 2): equally loaded candidates of a
// multi-layer hierarchy must share the choice uniformly, not herd onto the
// lowest index.
TEST(PotRouter, KaryTiesBrokenUniformly) {
  LoadTracker t({{4, 4, 4, 4}, 1.0});
  PotRouter router(&t, RoutingPolicy::kPowerOfTwo, 17);
  const std::vector<CacheNodeId> candidates{{0, 1}, {1, 2}, {2, 3}, {3, 0}};
  constexpr int kTrials = 40000;
  int counts[4] = {0, 0, 0, 0};
  for (int i = 0; i < kTrials; ++i) {
    ++counts[router.Choose(candidates)];
  }
  for (int c : counts) {
    EXPECT_NEAR(static_cast<double>(c) / kTrials, 0.25, 0.02);
  }
}

// Dead-node degradation at k > 2: a MarkDead-pinned candidate (+inf view,
// core/load_tracker.h) must lose every power-of-k comparison.
TEST(PotRouter, KaryDeadCandidateNeverChosen) {
  LoadTracker t({{4, 4, 4}, 1.0});
  t.Update({0, 0}, 1000);
  t.Update({1, 1}, 999);
  t.Update({2, 2}, 998);
  t.MarkDead({2, 2});  // the least-loaded candidate dies
  PotRouter router(&t, RoutingPolicy::kPowerOfTwo, 23);
  const std::vector<CacheNodeId> candidates{{0, 0}, {1, 1}, {2, 2}};
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(router.Choose(candidates), 1u);  // the alive minimum
  }
  t.MarkAlive({2, 2});
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(router.Choose(candidates), 2u);  // shadow estimate restored
  }
}

TEST(PotRouter, RandomPolicyUsesBothCandidates) {
  LoadTracker t({{4, 4}, 1.0});
  t.Update({0, 0}, 1000);  // load-aware routing would avoid this one entirely
  PotRouter router(&t, RoutingPolicy::kRandom, 5);
  const std::vector<CacheNodeId> candidates{{0, 0}, {1, 0}};
  int first = 0;
  for (int i = 0; i < 10000; ++i) {
    first += router.Choose(candidates) == 0 ? 1 : 0;
  }
  EXPECT_NEAR(first / 10000.0, 0.5, 0.05);
}

TEST(PotRouter, FirstChoicePolicyIsDeterministic) {
  LoadTracker t({{4, 4}, 1.0});
  t.Update({0, 0}, 1000);
  PotRouter router(&t, RoutingPolicy::kFirstChoice, 6);
  const std::vector<CacheNodeId> candidates{{0, 0}, {1, 0}};
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(router.Choose(candidates), 0u);
  }
}

TEST(PotRouter, EmptyCandidatesReturnsZero) {
  LoadTracker t({{4, 4}, 1.0});
  PotRouter router(&t, RoutingPolicy::kPowerOfTwo, 7);
  EXPECT_EQ(router.Choose({}), 0u);
}

// ChoosePair(a, b) is documented as semantically identical to Choose({a, b}):
// given the same RNG stream, the two must pick the same node for every load
// configuration — including exact ties, where both must take the same branch of
// the reservoir tie-break — under all three routing policies. (The batched
// backends use ChoosePair while the sequential reference uses Choose; a
// divergence here would silently skew their parity.)
class PotRouterParityTest : public ::testing::TestWithParam<RoutingPolicy> {};

TEST_P(PotRouterParityTest, ChoosePairMatchesChoose) {
  LoadTracker tracker({{4, 4}, 1.0});
  constexpr uint64_t kSeed = 99;
  PotRouter via_choose(&tracker, GetParam(), kSeed);
  PotRouter via_pair(&tracker, GetParam(), kSeed);
  const CacheNodeId a{0, 1};
  const CacheNodeId b{1, 2};
  const std::vector<CacheNodeId> candidates{a, b};
  // Cycle through less-loaded-a / tie / less-loaded-b so every branch (including
  // the RNG-consuming tie) is exercised many times on the shared stream.
  const double loads[][2] = {{1.0, 2.0}, {5.0, 5.0}, {9.0, 3.0}, {0.0, 0.0}};
  for (int i = 0; i < 400; ++i) {
    const auto& lc = loads[i % 4];
    tracker.Set(a, lc[0]);
    tracker.Set(b, lc[1]);
    const CacheNodeId chosen = candidates[via_choose.Choose(candidates)];
    const CacheNodeId paired = via_pair.ChoosePair(a, b);
    ASSERT_EQ(chosen.layer, paired.layer) << "iteration " << i;
    ASSERT_EQ(chosen.index, paired.index) << "iteration " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Policies, PotRouterParityTest,
                         ::testing::Values(RoutingPolicy::kPowerOfTwo,
                                           RoutingPolicy::kRandom,
                                           RoutingPolicy::kFirstChoice),
                         [](const auto& param_info) {
                           switch (param_info.param) {
                             case RoutingPolicy::kPowerOfTwo: return "PowerOfTwo";
                             case RoutingPolicy::kRandom: return "Random";
                             case RoutingPolicy::kFirstChoice: return "FirstChoice";
                           }
                           return "Unknown";
                         });

}  // namespace
}  // namespace distcache
