#include "sim/pok_process.h"

#include <gtest/gtest.h>

namespace distcache {
namespace {

PokProcess::Config BaseConfig(size_t layers, size_t choices, double load) {
  PokProcess::Config cfg;
  cfg.num_objects = 128;
  cfg.layer_sizes = std::vector<size_t>(layers, 8);
  cfg.total_rate = load * static_cast<double>(layers * 8);
  cfg.zipf_theta = 0.99;
  cfg.pmf_cap = 1.0 / (2.0 * cfg.total_rate);  // theorem precondition at this rate
  cfg.choices = choices;
  return cfg;
}

TEST(PokProcess, TwoLayerLightLoadStationary) {
  PokProcess p(BaseConfig(2, 2, 0.5));
  const auto result = p.Run(400.0);
  EXPECT_TRUE(result.stationary) << result.drift;
}

TEST(PokProcess, TwoLayerHighLoadStationary) {
  PokProcess p(BaseConfig(2, 2, 0.85));
  EXPECT_TRUE(p.Run(500.0).stationary);
}

TEST(PokProcess, OverloadUnstable) {
  PokProcess p(BaseConfig(2, 2, 1.3));
  const auto result = p.Run(300.0);
  EXPECT_FALSE(result.stationary);
  EXPECT_GT(result.backlog_series.back(), 500.0);
}

TEST(PokProcess, MoreChoicesReduceBacklog) {
  const auto two = PokProcess(BaseConfig(4, 2, 0.8)).Run(400.0);
  const auto four = PokProcess(BaseConfig(4, 4, 0.8)).Run(400.0);
  EXPECT_LE(four.backlog_series.back(), two.backlog_series.back() + 50.0);
}

TEST(PokProcess, SingleChoiceWorstAtEqualCapacity) {
  // choices=1 over the same node pool is the single-hash strawman.
  const auto one = PokProcess(BaseConfig(2, 1, 0.8)).Run(400.0);
  const auto two = PokProcess(BaseConfig(2, 2, 0.8)).Run(400.0);
  EXPECT_LT(two.drift, one.drift + 0.01);
}

TEST(PokProcess, WorkConservation) {
  PokProcess p(BaseConfig(3, 3, 0.6));
  const auto result = p.Run(400.0);
  // Everything that arrived is either served or still queued.
  EXPECT_EQ(result.arrivals,
            result.departures + static_cast<uint64_t>(result.backlog_series.back()));
}

TEST(PokProcess, ArrivalRateMatchesConfig) {
  PokProcess p(BaseConfig(2, 2, 0.5));
  const auto result = p.Run(400.0);
  EXPECT_NEAR(static_cast<double>(result.arrivals) / 400.0, 8.0, 1.0);
}

TEST(PokProcess, FeasibilityCrossCheck) {
  // If the L-layer matching is feasible with slack, the PoK process is stationary.
  PokProcess::Config cfg = BaseConfig(3, 3, 0.7);
  PokProcess p(cfg);
  DiscreteDistribution dist(CappedZipfPmf(cfg.num_objects, 0.99, cfg.pmf_cap));
  std::vector<double> rates(cfg.num_objects);
  for (size_t i = 0; i < cfg.num_objects; ++i) {
    rates[i] = cfg.total_rate * dist.Pmf(i);
  }
  ASSERT_TRUE(p.graph().FeasibleMatching(rates, {1.0, 1.0, 1.0}));
  EXPECT_TRUE(p.Run(500.0).stationary);
}

}  // namespace
}  // namespace distcache
