#include "sim/pot_process.h"

#include <gtest/gtest.h>

namespace distcache {
namespace {

PotProcess::Config BaseConfig(double rate, ChoicePolicy policy) {
  PotProcess::Config cfg;
  cfg.num_objects = 128;
  cfg.upper_nodes = 8;
  cfg.lower_nodes = 8;
  cfg.service_rate = 1.0;
  cfg.total_rate = rate;
  cfg.zipf_theta = 0.9;
  cfg.policy = policy;
  return cfg;
}

TEST(PotProcess, LightLoadIsStationary) {
  PotProcess p(BaseConfig(4.0, ChoicePolicy::kPowerOfTwo));  // 25% of 16 capacity
  const auto result = p.Run(400.0);
  EXPECT_TRUE(result.stationary) << "drift=" << result.drift;
  EXPECT_LT(result.backlog_series.back(), 50.0);
}

TEST(PotProcess, ModerateLoadStationaryUnderPoT) {
  // Lemma 2 regime: ~70% of aggregate capacity, skewed objects; PoT keeps it stable.
  PotProcess p(BaseConfig(11.0, ChoicePolicy::kPowerOfTwo));
  const auto result = p.Run(600.0);
  EXPECT_TRUE(result.stationary) << "drift=" << result.drift;
}

TEST(PotProcess, OverloadIsNotStationary) {
  PotProcess p(BaseConfig(24.0, ChoicePolicy::kPowerOfTwo));  // 150% of capacity
  const auto result = p.Run(400.0);
  EXPECT_FALSE(result.stationary);
  EXPECT_GT(result.backlog_series.back(), 1000.0);
}

TEST(PotProcess, SingleHashUnstableWherePoTIsStable) {
  // Lemma 3's life-or-death gap: at a rate PoT sustains, one hash blows up because
  // some node's hashed-in objects exceed its service rate.
  const double rate = 11.0;
  PotProcess pot(BaseConfig(rate, ChoicePolicy::kPowerOfTwo));
  const auto pot_result = pot.Run(600.0);
  EXPECT_TRUE(pot_result.stationary);

  PotProcess::Config single_cfg = BaseConfig(rate, ChoicePolicy::kSingleHash);
  // Same aggregate capacity for fairness: 16 lower nodes, no upper layer.
  single_cfg.lower_nodes = 16;
  int unstable = 0;
  for (uint64_t seed = 0; seed < 5; ++seed) {
    single_cfg.seed = seed;
    PotProcess single(single_cfg);
    unstable += single.Run(600.0).stationary ? 0 : 1;
  }
  EXPECT_GE(unstable, 3) << "single-hash should blow up with constant probability";
}

TEST(PotProcess, RandomOfTwoWorseThanPoT) {
  // Load-oblivious random-of-two splits 50/50 and overloads the hot pair member.
  const double rate = 13.0;
  PotProcess pot(BaseConfig(rate, ChoicePolicy::kPowerOfTwo));
  PotProcess rnd(BaseConfig(rate, ChoicePolicy::kRandomOfTwo));
  const auto pot_result = pot.Run(500.0);
  const auto rnd_result = rnd.Run(500.0);
  EXPECT_LE(pot_result.drift, rnd_result.drift + 0.01);
  EXPECT_LE(pot_result.backlog_series.back(),
            rnd_result.backlog_series.back() + 100.0);
}

TEST(PotProcess, ArrivalsMatchConfiguredRate) {
  PotProcess p(BaseConfig(8.0, ChoicePolicy::kPowerOfTwo));
  const auto result = p.Run(500.0);
  EXPECT_NEAR(static_cast<double>(result.arrivals) / 500.0, 8.0, 0.8);
}

TEST(PotProcess, DeparturesTrackArrivalsWhenStable) {
  PotProcess p(BaseConfig(6.0, ChoicePolicy::kPowerOfTwo));
  const auto result = p.Run(500.0);
  EXPECT_NEAR(static_cast<double>(result.departures) /
                  static_cast<double>(result.arrivals),
              1.0, 0.05);
}

// Cross-check against the matching certificate (Lemma 2): when the max-flow problem
// is feasible with slack, the simulated PoT process is stationary.
TEST(PotProcess, FeasibleMatchingImpliesStationary) {
  PotProcess::Config cfg = BaseConfig(10.0, ChoicePolicy::kPowerOfTwo);
  PotProcess p(cfg);
  ZipfDistribution dist(cfg.num_objects, cfg.zipf_theta);
  std::vector<double> rates(cfg.num_objects);
  for (uint64_t i = 0; i < cfg.num_objects; ++i) {
    rates[i] = cfg.total_rate * dist.Pmf(i);
  }
  ASSERT_TRUE(p.graph().FeasibleMatching(rates, cfg.service_rate));
  EXPECT_TRUE(p.Run(600.0).stationary);
}

}  // namespace
}  // namespace distcache
