// Multi-layer hierarchy tests for the layer-generic engine stack (§3.1).
//
// Two families:
//  * L=2 golden parity — the layer refactor must be a strict behavioral no-op
//    for the historical spine/leaf deployment: the constants below were captured
//    from the pre-refactor build (same seeds, same configs) and every counter
//    must match exactly, every double bit-for-bit (the refactor changed data
//    layout, never arithmetic or RNG draw order).
//  * L>=3 behavior — the depth the refactor unlocks: sequential/sharded/fluid
//    parity, per-layer budget enforcement, and the full reconfiguration timeline
//    (failure, hot-spot shift, online re-allocation) at three layers.
#include <gtest/gtest.h>

#include <cmath>

#include "sim/cluster_model.h"
#include "sim/route_table.h"
#include "sim/sim_backend.h"

namespace distcache {
namespace {

ClusterConfig GoldenCluster() {
  ClusterConfig cfg;
  cfg.num_spine = 8;
  cfg.num_racks = 8;
  cfg.servers_per_rack = 4;
  cfg.per_switch_objects = 50;
  cfg.num_keys = 1'000'000;
  cfg.zipf_theta = 0.99;
  cfg.write_ratio = 0.2;
  cfg.seed = 42;
  return cfg;
}

struct LoadSummary {
  double sum = 0.0;
  double max = 0.0;
};

LoadSummary Summarize(const std::vector<double>& loads) {
  LoadSummary s;
  for (double x : loads) {
    s.sum += x;
    s.max = std::max(s.max, x);
  }
  return s;
}

// Captured from the pre-refactor (seed) build: sequential engine, 200k requests
// on GoldenCluster(). Integer counters must be exact; the doubles are exact too
// because every load is a sum of binary fractions (1.0, 2.0, 0.25-based costs).
TEST(TwoLayerGolden, SequentialStaticRunMatchesSeedBuild) {
  SimBackendConfig bcfg;
  bcfg.cluster = GoldenCluster();
  const BackendStats st =
      MakeSimBackend(BackendKind::kSequential, bcfg)->Run(200'000);

  EXPECT_EQ(st.reads, 160392u);
  EXPECT_EQ(st.writes, 39608u);
  EXPECT_EQ(st.cache_hits, 70787u);
  EXPECT_EQ(st.spine_hits, 38066u);
  EXPECT_EQ(st.leaf_hits, 32721u);
  EXPECT_EQ(st.server_reads, 89605u);
  EXPECT_EQ(st.dropped, 0u);
  EXPECT_DOUBLE_EQ(st.hit_ratio(), 0.44133747319068284);
  EXPECT_DOUBLE_EQ(st.CacheImbalance(), 1.6673291479820629);
  EXPECT_DOUBLE_EQ(st.ServerImbalance(), 2.418872676205579);
  ASSERT_EQ(st.cache_load.size(), 2u);
  const LoadSummary spine = Summarize(st.spine_load());
  const LoadSummary leaf = Summarize(st.leaf_load());
  const LoadSummary server = Summarize(st.server_load);
  EXPECT_DOUBLE_EQ(spine.sum, 72370.0);
  EXPECT_DOUBLE_EQ(spine.max, 14524.0);
  EXPECT_DOUBLE_EQ(leaf.sum, 67005.0);
  EXPECT_DOUBLE_EQ(leaf.max, 14523.0);
  EXPECT_DOUBLE_EQ(server.sum, 137786.5);
  EXPECT_DOUBLE_EQ(server.max, 10415.25);
}

// The cache-policy layer must be invisible at the default: an explicit
// cache_policy = kDistCache (with the hierarchy/write knobs at their defaults)
// takes the same zero-overhead static path and reproduces the golden above
// bit-for-bit — no extra RNG draws, no perturbed load arithmetic.
TEST(TwoLayerGolden, ExplicitDistCachePolicyKeepsSeedGolden) {
  SimBackendConfig bcfg;
  bcfg.cluster = GoldenCluster();
  bcfg.cluster.cache_policy = CachePolicyKind::kDistCache;
  bcfg.cluster.cache_hierarchy = HierarchyMode::kInclusive;
  bcfg.cluster.write_policy = WritePolicy::kWriteThrough;
  const BackendStats st =
      MakeSimBackend(BackendKind::kSequential, bcfg)->Run(200'000);

  EXPECT_EQ(st.reads, 160392u);
  EXPECT_EQ(st.writes, 39608u);
  EXPECT_EQ(st.cache_hits, 70787u);
  EXPECT_EQ(st.spine_hits, 38066u);
  EXPECT_EQ(st.leaf_hits, 32721u);
  EXPECT_EQ(st.server_reads, 89605u);
  EXPECT_DOUBLE_EQ(st.hit_ratio(), 0.44133747319068284);
  EXPECT_DOUBLE_EQ(st.CacheImbalance(), 1.6673291479820629);
  EXPECT_DOUBLE_EQ(st.ServerImbalance(), 2.418872676205579);
}

// kStaticTopK shares the static contents and the per-request RNG stream with
// kDistCache (the PoT router draws from its own seed, so removing it does not
// shift the request stream): on an event-free run the what-is-cached counters
// must match the golden exactly — only the load *distribution* may differ, and
// it must differ for the worse (serial first-candidate routing concentrates
// load; the PoT spread is the paper's contribution this policy isolates).
TEST(TwoLayerGolden, StaticTopKMatchesDistCacheContentsButNotBalance) {
  SimBackendConfig bcfg;
  bcfg.cluster = GoldenCluster();
  bcfg.cluster.cache_policy = CachePolicyKind::kStaticTopK;
  const BackendStats st =
      MakeSimBackend(BackendKind::kSequential, bcfg)->Run(200'000);

  EXPECT_EQ(st.reads, 160392u);
  EXPECT_EQ(st.writes, 39608u);
  EXPECT_EQ(st.cache_hits, 70787u);
  EXPECT_EQ(st.server_reads, 89605u);
  EXPECT_EQ(st.dropped, 0u);
  // Serial routing sends every two-copy read to the spine copy: the spine/leaf
  // split collapses upward and balance degrades vs the PoT golden (1.667).
  EXPECT_GT(st.spine_hits, 38066u);
  EXPECT_LT(st.leaf_hits, 32721u);
  EXPECT_GT(st.CacheImbalance(), 1.6673291479820629);
}

// Same capture discipline, with the full reconfiguration timeline: two failures,
// controller recovery, a hot-spot shift, an observed-count re-allocation, switch
// restoration, and a workload phase change — the complete §4.4 + §6.4 loop.
TEST(TwoLayerGolden, SequentialTimelineRunMatchesSeedBuild) {
  SimBackendConfig bcfg;
  bcfg.cluster = GoldenCluster();
  bcfg.sample_interval = 40'000;
  bcfg.events = {ClusterEvent::FailSpine(20'000, 0),
                 ClusterEvent::FailSpine(20'000, 1),
                 ClusterEvent::RunRecovery(60'000),
                 ClusterEvent::ShiftHotspot(80'000, 500'000),
                 ClusterEvent::ReallocateCache(100'000),
                 ClusterEvent::RecoverSpine(120'000, 0),
                 ClusterEvent::RecoverSpine(120'000, 1)};
  bcfg.phases = {WorkloadPhase{140'000, 0.9, 0.1, 1234}};
  const BackendStats st =
      MakeSimBackend(BackendKind::kSequential, bcfg)->Run(200'000);

  EXPECT_EQ(st.reads, 166263u);
  EXPECT_EQ(st.writes, 33737u);
  EXPECT_EQ(st.cache_hits, 40050u);
  EXPECT_EQ(st.spine_hits, 18535u);
  EXPECT_EQ(st.leaf_hits, 21515u);
  EXPECT_EQ(st.server_reads, 119785u);
  EXPECT_EQ(st.dropped, 8473u);
  EXPECT_DOUBLE_EQ(st.hit_ratio(), 0.24088341964237384);
  EXPECT_DOUBLE_EQ(st.CacheImbalance(), 1.5254139744159887);
  EXPECT_DOUBLE_EQ(st.ServerImbalance(), 1.4645623367675571);

  const uint64_t golden_series[5][5] = {
      // requests, delivered, dropped, reads, cache_hits
      {40'000, 35'847, 4'153, 31'835, 13'074},
      {40'000, 35'680, 4'320, 32'091, 13'138},
      {40'000, 40'000, 0, 32'172, 6'887},
      {40'000, 40'000, 0, 34'121, 6'951},
      {40'000, 40'000, 0, 36'044, 0},
  };
  ASSERT_EQ(st.series.size(), 5u);
  for (size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(st.series[i].requests, golden_series[i][0]) << i;
    EXPECT_EQ(st.series[i].delivered, golden_series[i][1]) << i;
    EXPECT_EQ(st.series[i].dropped, golden_series[i][2]) << i;
    EXPECT_EQ(st.series[i].reads, golden_series[i][3]) << i;
    EXPECT_EQ(st.series[i].cache_hits, golden_series[i][4]) << i;
  }
}

// The fluid engine went through the same generalization; its analytic numbers
// must also match the seed build exactly.
TEST(TwoLayerGolden, FluidStaticRunMatchesSeedBuild) {
  SimBackendConfig bcfg;
  bcfg.cluster = GoldenCluster();
  const BackendStats st = MakeSimBackend(BackendKind::kFluid, bcfg)->Run(200'000);
  EXPECT_EQ(st.reads, 160000u);
  EXPECT_EQ(st.cache_hits, 70678u);
  EXPECT_DOUBLE_EQ(st.hit_ratio(), 0.44173750000000001);
  EXPECT_DOUBLE_EQ(st.CacheImbalance(), 1.8615175922618381);
  EXPECT_DOUBLE_EQ(st.ServerImbalance(), 2.4594788041275812);
}

// An explicit {spine, leaf} LayerSpec vector is the same deployment as the
// legacy num_spine/num_racks fields: stats must agree bit for bit.
TEST(TwoLayerGolden, ExplicitLayerVectorMatchesLegacyShape) {
  SimBackendConfig legacy;
  legacy.cluster = GoldenCluster();
  SimBackendConfig layered = legacy;
  layered.cluster.cache_layers = {{8, 50}, {8, 50}};

  const BackendStats a =
      MakeSimBackend(BackendKind::kSequential, legacy)->Run(100'000);
  const BackendStats b =
      MakeSimBackend(BackendKind::kSequential, layered)->Run(100'000);
  EXPECT_EQ(a.cache_hits, b.cache_hits);
  EXPECT_EQ(a.spine_hits, b.spine_hits);
  EXPECT_EQ(a.server_reads, b.server_reads);
  ASSERT_EQ(a.cache_load.size(), b.cache_load.size());
  for (size_t l = 0; l < a.cache_load.size(); ++l) {
    EXPECT_EQ(a.cache_load[l], b.cache_load[l]) << "layer " << l;
  }
  EXPECT_EQ(a.server_load, b.server_load);
}

ClusterConfig ThreeLayerCluster() {
  ClusterConfig cfg;
  cfg.num_spine = 16;
  cfg.num_racks = 16;
  cfg.servers_per_rack = 8;
  cfg.num_keys = 2'000'000;
  cfg.zipf_theta = 0.99;
  cfg.seed = 42;
  cfg.cache_layers = {{16, 66}, {16, 66}, {16, 66}};
  return cfg;
}

// Per-layer budgets and the one-copy-per-layer rule hold at depth 3, and every
// head key's candidates stack up exactly as CopiesOf reports.
TEST(ThreeLayer, AllocationRespectsPerLayerBudgets) {
  const ClusterConfig cfg = ThreeLayerCluster();
  ClusterModel model(cfg);
  EXPECT_EQ(model.allocation->num_layers(), 3u);
  for (size_t l = 0; l < 3; ++l) {
    for (const auto& contents : model.allocation->layer_contents(l)) {
      EXPECT_LE(contents.size(), 66u);
    }
  }
  size_t multi_copy = 0;
  for (uint64_t key = 0; key < 50; ++key) {
    const CacheCopies copies = model.allocation->CopiesOf(key);
    uint32_t last_layer = 0;
    for (uint8_t i = 0; i < copies.num; ++i) {
      if (i > 0) {
        EXPECT_GT(copies.nodes[i].layer, last_layer);  // ascending, one per layer
      }
      last_layer = copies.nodes[i].layer;
    }
    multi_copy += copies.num == 3 ? 1 : 0;
  }
  // The globally hottest keys are at the top of all three rankings.
  EXPECT_GE(multi_copy, 40u);
}

TEST(ThreeLayer, SequentialShardedFluidParity) {
  SimBackendConfig bcfg;
  bcfg.cluster = ThreeLayerCluster();
  const BackendStats seq =
      MakeSimBackend(BackendKind::kSequential, bcfg)->Run(400'000);
  bcfg.shards = 4;
  const BackendStats shd =
      MakeSimBackend(BackendKind::kSharded, bcfg)->Run(400'000);
  const BackendStats fluid =
      MakeSimBackend(BackendKind::kFluid, bcfg)->Run(400'000);

  EXPECT_GT(seq.hit_ratio(), 0.4);
  EXPECT_NEAR(shd.hit_ratio() / seq.hit_ratio(), 1.0, 0.015);
  EXPECT_NEAR(seq.hit_ratio() / fluid.hit_ratio(), 1.0, 0.02);
  EXPECT_NEAR(shd.CacheImbalance() / seq.CacheImbalance(), 1.0, 0.05);
  ASSERT_EQ(seq.cache_load.size(), 3u);
  ASSERT_EQ(shd.cache_load.size(), 3u);
  // Every layer absorbs real traffic (the mid layer is not a dead pass-through).
  for (size_t l = 0; l < 3; ++l) {
    double seq_layer = 0.0;
    double shd_layer = 0.0;
    for (double x : seq.cache_load[l]) seq_layer += x;
    for (double x : shd.cache_load[l]) shd_layer += x;
    EXPECT_GT(seq_layer, 0.0) << "layer " << l;
    EXPECT_NEAR(shd_layer / seq_layer, 1.0, 0.05) << "layer " << l;
  }
}

// The full reconfiguration timeline at L=3: spine failures blackhole, the
// controller remaps, the hot set shifts, the observed-count re-allocation
// restores the hit ratio, and the switches return home — same semantics as the
// two-layer Fig. 11 / §6.4 loop, now over a three-layer hierarchy.
TEST(ThreeLayer, FailureShiftReallocTimeline) {
  SimBackendConfig bcfg;
  bcfg.cluster = ThreeLayerCluster();
  const uint64_t requests = 1'000'000;
  bcfg.sample_interval = requests / 10;
  bcfg.events = {ClusterEvent::FailSpine(requests * 1 / 10, 0),
                 ClusterEvent::FailSpine(requests * 1 / 10, 1),
                 ClusterEvent::RunRecovery(requests * 3 / 10),
                 ClusterEvent::RecoverSpine(requests * 4 / 10, 0),
                 ClusterEvent::RecoverSpine(requests * 4 / 10, 1),
                 ClusterEvent::ShiftHotspot(requests * 5 / 10, 1'000'000),
                 ClusterEvent::ReallocateCache(requests * 7 / 10)};

  for (const BackendKind kind : {BackendKind::kSequential, BackendKind::kSharded}) {
    bcfg.shards = kind == BackendKind::kSharded ? 4 : 1;
    const BackendStats st = MakeSimBackend(kind, bcfg)->Run(requests);
    ASSERT_EQ(st.series.size(), 10u);
    const double pre = st.series[0].hit_ratio();
    EXPECT_GT(pre, 0.4);
    // Failure window (intervals 1-2): ECMP transit through 2/16 dead spines
    // drops requests.
    EXPECT_GT(st.series[1].dropped + st.series[2].dropped, 0u);
    // Post-remap, pre-shift: delivery restored.
    EXPECT_EQ(st.series[4].dropped, 0u);
    // Shift window (intervals 5-6): the cached set went cold.
    EXPECT_LT(st.series[6].hit_ratio(), 0.1 * pre);
    // Re-allocation (interval 7+): the observed hot set is cached again.
    EXPECT_GT(st.series[9].hit_ratio(), 0.9 * pre);
    EXPECT_GT(st.dropped, 0u);
  }
}

// Deliberate fix over the seed build (documented in CHANGES.md): a
// CacheReplication key crowded out of its rack's leaf budget used to route and
// charge a phantom "leaf 0" copy; its route entry now carries a leaf candidate
// only when the copy exists.
TEST(Replication, KeysWithoutLeafCopyHaveNoLeafCandidate) {
  ClusterConfig cfg;
  cfg.mechanism = Mechanism::kCacheReplication;
  cfg.num_spine = 4;
  cfg.num_racks = 4;
  cfg.servers_per_rack = 2;
  cfg.num_keys = 100'000;
  // Leaf budget far below the replicated set: some of the 40 globally hottest
  // keys cannot get a leaf copy.
  cfg.cache_layers = {{4, 40}, {4, 4}};
  ClusterModel model(cfg);
  const RouteTable routes = BuildRouteTable(model);
  int without_leaf = 0;
  for (uint64_t rank = 0; rank < 40; ++rank) {
    const RouteEntry& e = routes.entries[rank];
    ASSERT_EQ(e.kind, RouteEntry::kReplicated) << rank;
    const CacheCopies copies = model.allocation->CopiesOf(rank);
    if (copies.leaf()) {
      ASSERT_EQ(e.num, 1u) << rank;
      EXPECT_EQ(UnpackCandidate(e.c0).layer, 1u) << rank;
    } else {
      EXPECT_EQ(e.num, 0u) << rank;  // no phantom leaf-0 candidate
      ++without_leaf;
    }
  }
  EXPECT_GT(without_leaf, 0);

  // The engine path over such entries must run clean (reads spread over the
  // spine replicas only; writes touch only real copies).
  SimBackendConfig bcfg;
  bcfg.cluster = cfg;
  bcfg.cluster.write_ratio = 0.2;
  const BackendStats st =
      MakeSimBackend(BackendKind::kSequential, bcfg)->Run(100'000);
  EXPECT_GT(st.hit_ratio(), 0.0);
  EXPECT_EQ(st.dropped, 0u);
}

// Depth sweep sanity: at a fixed total budget the hit ratio is budget-bound
// (roughly depth-independent) and balance does not degrade with depth.
TEST(MultiLayer, DepthSweepKeepsBalance) {
  SimBackendConfig two;
  two.cluster = ThreeLayerCluster();
  two.cluster.cache_layers = {{16, 100}, {16, 100}};
  SimBackendConfig four;
  four.cluster = ThreeLayerCluster();
  four.cluster.cache_layers = {{16, 50}, {16, 50}, {16, 50}, {16, 50}};

  const BackendStats l2 = MakeSimBackend(BackendKind::kSequential, two)->Run(300'000);
  const BackendStats l4 =
      MakeSimBackend(BackendKind::kSequential, four)->Run(300'000);
  EXPECT_NEAR(l4.hit_ratio() / l2.hit_ratio(), 1.0, 0.1);
  EXPECT_LT(l4.CacheImbalance(), l2.CacheImbalance() * 1.2);
}

}  // namespace
}  // namespace distcache
