// Engine-level tests for the dynamic cache-policy path (core/cache_policy.h):
//
//  * Sequential golden pin — the sequential engine is fully deterministic, so
//    an LRU run over the full failure+shift+realloc timeline pins the entire
//    dynamic-policy machinery (probe/commit split, inclusive fill and
//    back-invalidation, failure wipe and rewarm) bit-for-bit. Captured from the
//    build that introduced the policy layer.
//  * Engine parity — sequential vs sharded must agree on hit ratio within
//    statistical tolerance on the full timeline (per-shard policy replicas see
//    uniformly thinned streams, mirroring the telemetry-staleness relaxation),
//    and the fluid engine's per-policy closed form must land within loose
//    analytic tolerance of the request-level engines.
//  * Write-path counters — write-back absorbs writes at the caches and emits
//    eviction-time writebacks; write-through never does either.
#include <gtest/gtest.h>

#include <cmath>

#include "sim/sim_backend.h"

namespace distcache {
namespace {

// The scaling_test.cc golden cluster (8 spines, 8 racks, 4 servers/rack, 1M
// keys, zipf 0.99, 20% writes, seed 42) with the policy knobs exposed.
ClusterConfig PolicyCluster(CachePolicyKind policy, HierarchyMode hierarchy,
                            WritePolicy write) {
  ClusterConfig cfg;
  cfg.num_spine = 8;
  cfg.num_racks = 8;
  cfg.servers_per_rack = 4;
  cfg.per_switch_objects = 50;
  cfg.num_keys = 1'000'000;
  cfg.zipf_theta = 0.99;
  cfg.write_ratio = 0.2;
  cfg.seed = 42;
  cfg.cache_policy = policy;
  cfg.cache_hierarchy = hierarchy;
  cfg.write_policy = write;
  return cfg;
}

// The §4.4 + §6.4 composite timeline shared with scaling_test.cc. Note the
// kReallocateCache step is a deliberate no-op for dynamic policies (the
// controller does not manage their contents); it stays in the timeline to pin
// exactly that.
std::vector<ClusterEvent> FullTimeline() {
  return {ClusterEvent::FailSpine(40'000, 2), ClusterEvent::RunRecovery(60'000),
          ClusterEvent::ShiftHotspot(90'000, 12'345),
          ClusterEvent::ReallocateCache(120'000),
          ClusterEvent::RecoverSpine(150'000, 2)};
}

// Captured from the build that introduced the policy layer: sequential engine,
// LRU/inclusive/write-through, 200k requests, full timeline. Pins the dynamic
// request path end to end — any change to admission, eviction, fill, failure
// wipe or RNG draw order shows up here first.
TEST(PolicyGolden, SequentialLruTimelineRunIsDeterministic) {
  SimBackendConfig bcfg;
  bcfg.cluster = PolicyCluster(CachePolicyKind::kLru, HierarchyMode::kInclusive,
                               WritePolicy::kWriteThrough);
  bcfg.events = FullTimeline();
  const BackendStats st =
      MakeSimBackend(BackendKind::kSequential, bcfg)->Run(200'000);

  EXPECT_EQ(st.reads, 160339u);
  EXPECT_EQ(st.writes, 39661u);
  EXPECT_EQ(st.cache_hits, 47331u);
  EXPECT_EQ(st.spine_hits, 43727u);
  EXPECT_EQ(st.leaf_hits, 3604u);
  EXPECT_EQ(st.server_reads, 111515u);
  EXPECT_EQ(st.dropped, 2015u);
  EXPECT_EQ(st.cache_write_hits, 0u);
  EXPECT_EQ(st.writebacks, 0u);
}

// The same run twice must be bit-identical (the policy runtime is fully
// deterministic; no hash-map iteration order leaks into behavior).
TEST(PolicyGolden, SequentialLruRunIsReproducible) {
  SimBackendConfig bcfg;
  bcfg.cluster = PolicyCluster(CachePolicyKind::kLfu, HierarchyMode::kExclusive,
                               WritePolicy::kWriteBack);
  bcfg.events = FullTimeline();
  const BackendStats a =
      MakeSimBackend(BackendKind::kSequential, bcfg)->Run(150'000);
  const BackendStats b =
      MakeSimBackend(BackendKind::kSequential, bcfg)->Run(150'000);
  EXPECT_EQ(a.cache_hits, b.cache_hits);
  EXPECT_EQ(a.spine_hits, b.spine_hits);
  EXPECT_EQ(a.leaf_hits, b.leaf_hits);
  EXPECT_EQ(a.cache_write_hits, b.cache_write_hits);
  EXPECT_EQ(a.writebacks, b.writebacks);
  EXPECT_EQ(a.dropped, b.dropped);
}

// Sequential vs sharded parity on the full timeline, across shard counts. Each
// shard runs a full-capacity policy replica over its (uniformly thinned) share
// of the stream, so aggregate hit ratios agree within statistical tolerance.
// This test is also the TSan target for the policy path: 4 shards exercise the
// per-shard replicas concurrently (they share no mutable state by design).
TEST(PolicyParity, LruTimelineAcross124Shards) {
  constexpr uint64_t kRequests = 200'000;
  SimBackendConfig bcfg;
  bcfg.cluster = PolicyCluster(CachePolicyKind::kLru, HierarchyMode::kInclusive,
                               WritePolicy::kWriteThrough);
  bcfg.events = FullTimeline();
  const BackendStats seq =
      MakeSimBackend(BackendKind::kSequential, bcfg)->Run(kRequests);
  ASSERT_GT(seq.hit_ratio(), 0.2);
  for (uint32_t shards : {2u, 4u}) {
    bcfg.shards = shards;
    const BackendStats shd =
        MakeSimBackend(BackendKind::kSharded, bcfg)->Run(kRequests);
    EXPECT_EQ(shd.requests, kRequests);
    EXPECT_NEAR(shd.hit_ratio(), seq.hit_ratio(), 0.02) << shards << " shards";
    EXPECT_NEAR(static_cast<double>(shd.writes) / static_cast<double>(kRequests),
                static_cast<double>(seq.writes) / static_cast<double>(kRequests),
                0.01)
        << shards << " shards";
  }
}

// Fluid-vs-sequential cross-check: the per-policy closed forms (Che for
// LRU/SLRU, λT/(1+λT) for FIFO, top-C for LFU) are approximations — composed
// across layers by miss-stream thinning — so the tolerance is loose, but they
// must land in the right neighborhood and preserve the policy ordering
// (LFU ≥ LRU on a static Zipf workload; both below the static optimum).
TEST(PolicyParity, FluidClosedFormsTrackTheEngines) {
  for (CachePolicyKind policy :
       {CachePolicyKind::kLru, CachePolicyKind::kLfu, CachePolicyKind::kFifo}) {
    SimBackendConfig bcfg;
    bcfg.cluster = PolicyCluster(policy, HierarchyMode::kExclusive,
                                 WritePolicy::kWriteThrough);
    bcfg.cluster.write_ratio = 0.0;
    const double seq =
        MakeSimBackend(BackendKind::kSequential, bcfg)->Run(300'000).hit_ratio();
    const double fluid =
        MakeSimBackend(BackendKind::kFluid, bcfg)->Run(300'000).hit_ratio();
    EXPECT_NEAR(fluid, seq, 0.08) << CachePolicyName(policy);
  }

  // The static allocation beats inclusive dynamic policies on raw hit ratio
  // (inclusive duplication burns capacity; the static scheme caches each hot
  // key exactly once). Exclusive dynamic policies can edge it out on hits —
  // the static scheme's real win is load balance, which bench_policy measures.
  SimBackendConfig distcache;
  distcache.cluster = PolicyCluster(CachePolicyKind::kDistCache,
                                    HierarchyMode::kInclusive,
                                    WritePolicy::kWriteThrough);
  distcache.cluster.write_ratio = 0.0;
  SimBackendConfig lfu;
  lfu.cluster = PolicyCluster(CachePolicyKind::kLfu, HierarchyMode::kInclusive,
                              WritePolicy::kWriteThrough);
  lfu.cluster.write_ratio = 0.0;
  const double static_hit =
      MakeSimBackend(BackendKind::kSequential, distcache)->Run(300'000).hit_ratio();
  const double lfu_hit =
      MakeSimBackend(BackendKind::kSequential, lfu)->Run(300'000).hit_ratio();
  EXPECT_GT(static_hit, lfu_hit);
}

// Write-back absorbs cached writes and pays eviction-time writebacks;
// write-through does neither (it charges coherence per copy instead).
TEST(PolicyWritePath, WriteBackCountersFlowThroughBackendStats) {
  SimBackendConfig wb;
  wb.cluster = PolicyCluster(CachePolicyKind::kLru, HierarchyMode::kInclusive,
                             WritePolicy::kWriteBack);
  const BackendStats back =
      MakeSimBackend(BackendKind::kSequential, wb)->Run(150'000);
  EXPECT_GT(back.cache_write_hits, 0u);
  EXPECT_GT(back.writebacks, 0u);
  EXPECT_LE(back.cache_write_hits, back.writes);

  SimBackendConfig wt;
  wt.cluster = PolicyCluster(CachePolicyKind::kLru, HierarchyMode::kInclusive,
                             WritePolicy::kWriteThrough);
  const BackendStats through =
      MakeSimBackend(BackendKind::kSequential, wt)->Run(150'000);
  EXPECT_EQ(through.cache_write_hits, 0u);
  EXPECT_EQ(through.writebacks, 0u);
}

// Dynamic policies at L=3: the policy grid follows the configured hierarchy,
// and sequential/sharded parity holds at depth too.
TEST(PolicyParity, ThreeLayerLruParity) {
  SimBackendConfig bcfg;
  bcfg.cluster = PolicyCluster(CachePolicyKind::kLru, HierarchyMode::kInclusive,
                               WritePolicy::kWriteThrough);
  bcfg.cluster.cache_layers = {{8, 40}, {8, 40}, {8, 40}};
  const BackendStats seq =
      MakeSimBackend(BackendKind::kSequential, bcfg)->Run(200'000);
  ASSERT_EQ(seq.cache_load.size(), 3u);
  ASSERT_GT(seq.hit_ratio(), 0.1);
  bcfg.shards = 2;
  const BackendStats shd =
      MakeSimBackend(BackendKind::kSharded, bcfg)->Run(200'000);
  EXPECT_NEAR(shd.hit_ratio(), seq.hit_ratio(), 0.02);
}

}  // namespace
}  // namespace distcache
