// Sharded-engine scaling substrate tests (the lock-free-transport PR):
//
//  * Single-shard golden parity — a one-shard sharded run exchanges no
//    messages, so it is exactly deterministic. The constants below were
//    captured from the pre-refactor build (mutex-channel transport, per-request
//    owner-split sink, batch size 64): the transport rebuild must be a strict
//    behavioral no-op for the simulated cluster, every counter exact and every
//    double bit-for-bit (loads are sums of exactly-representable costs). The
//    configs pin both a static run and the full failure+shift+realloc timeline.
//  * Multi-shard parity — hit ratio, load imbalance and drop counters must
//    agree across 1, 2 and 4 shards on the full timeline within statistical
//    tolerance (multi-shard runs are scheduling-dependent through telemetry
//    arrival timing, so exact pins are impossible by design).
//  * Transport accounting — data-plane traffic rides the SPSC rings, the
//    control channel stays O(reconfigurations), and the batch-boundary polls
//    resolve overwhelmingly through the lock-free emptiness fast path.
#include <gtest/gtest.h>

#include <cmath>

#include "sim/sim_backend.h"

namespace distcache {
namespace {

// Mirrors the layer_test.cc golden cluster (8 spines, 8 racks, 4 servers/rack,
// 1M keys, zipf 0.99, 20% writes, seed 42).
ClusterConfig GoldenCluster() {
  ClusterConfig cfg;
  cfg.num_spine = 8;
  cfg.num_racks = 8;
  cfg.servers_per_rack = 4;
  cfg.per_switch_objects = 50;
  cfg.num_keys = 1'000'000;
  cfg.zipf_theta = 0.99;
  cfg.write_ratio = 0.2;
  cfg.seed = 42;
  return cfg;
}

SimBackendConfig GoldenBackendConfig(uint32_t shards) {
  SimBackendConfig bcfg;
  bcfg.cluster = GoldenCluster();
  bcfg.shards = shards;
  // The pre-refactor default. Batch size changes the RNG draw interleaving
  // (buckets are sampled batch-at-a-time), so the bit-level pins are only
  // valid at the batch size they were captured under.
  bcfg.batch_size = 64;
  return bcfg;
}

// The §4.4 + §6.4 composite: failure, recovery remap, hot-spot shift, online
// re-allocation from observed counts, switch restoration.
std::vector<ClusterEvent> FullTimeline() {
  return {ClusterEvent::FailSpine(40'000, 2), ClusterEvent::RunRecovery(60'000),
          ClusterEvent::ShiftHotspot(90'000, 12'345),
          ClusterEvent::ReallocateCache(120'000),
          ClusterEvent::RecoverSpine(150'000, 2)};
}

struct LoadSummary {
  double sum = 0.0;
  double max = 0.0;
};

LoadSummary Summarize(const std::vector<double>& loads) {
  LoadSummary s;
  for (double x : loads) {
    s.sum += x;
    s.max = std::max(s.max, x);
  }
  return s;
}

// Captured from the pre-refactor build: sharded engine, 1 shard, batch 64,
// 200k requests on GoldenCluster(), empty timeline.
TEST(ShardedGolden, SingleShardStaticRunMatchesPreRefactorBuild) {
  const BackendStats st =
      MakeSimBackend(BackendKind::kSharded, GoldenBackendConfig(1))->Run(200'000);

  EXPECT_EQ(st.reads, 159921u);
  EXPECT_EQ(st.writes, 40079u);
  EXPECT_EQ(st.cache_hits, 70684u);
  EXPECT_EQ(st.spine_hits, 37907u);
  EXPECT_EQ(st.leaf_hits, 32777u);
  EXPECT_EQ(st.server_reads, 89237u);
  EXPECT_EQ(st.dropped, 0u);
  EXPECT_DOUBLE_EQ(st.hit_ratio(), 0.4419932341593662);
  EXPECT_DOUBLE_EQ(st.CacheImbalance(), 1.6847555511301404);
  EXPECT_DOUBLE_EQ(st.ServerImbalance(), 2.463468562519127);
  const LoadSummary spine = Summarize(st.spine_load());
  const LoadSummary leaf = Summarize(st.leaf_load());
  const LoadSummary server = Summarize(st.server_load);
  EXPECT_DOUBLE_EQ(spine.sum, 72909.0);
  EXPECT_DOUBLE_EQ(spine.max, 14805.0);
  EXPECT_DOUBLE_EQ(leaf.sum, 67693.0);
  EXPECT_DOUBLE_EQ(leaf.max, 14805.0);
  EXPECT_DOUBLE_EQ(server.sum, 138055.75);
  EXPECT_DOUBLE_EQ(server.max, 10628.0);
  // One shard: nothing to send, nothing contended.
  EXPECT_EQ(st.cross_shard_messages, 0u);
  EXPECT_EQ(st.ring_messages, 0u);
  EXPECT_EQ(st.contended_receives, 0u);
}

// The policy layer's dispatch byte must be invisible on the sharded hot path
// too: an explicit default policy reproduces the pre-refactor pins bit-for-bit.
TEST(ShardedGolden, ExplicitDistCachePolicyKeepsPreRefactorGolden) {
  SimBackendConfig bcfg = GoldenBackendConfig(1);
  bcfg.cluster.cache_policy = CachePolicyKind::kDistCache;
  const BackendStats st =
      MakeSimBackend(BackendKind::kSharded, bcfg)->Run(200'000);

  EXPECT_EQ(st.reads, 159921u);
  EXPECT_EQ(st.writes, 40079u);
  EXPECT_EQ(st.cache_hits, 70684u);
  EXPECT_EQ(st.spine_hits, 37907u);
  EXPECT_EQ(st.leaf_hits, 32777u);
  EXPECT_EQ(st.server_reads, 89237u);
  EXPECT_DOUBLE_EQ(st.hit_ratio(), 0.4419932341593662);
  EXPECT_DOUBLE_EQ(st.CacheImbalance(), 1.6847555511301404);
  EXPECT_DOUBLE_EQ(st.ServerImbalance(), 2.463468562519127);
}

// Same capture discipline on the full failure+shift+realloc timeline (the
// batched hot path must also be a no-op across failure windows, where it runs
// the per-request RNG interleaving).
TEST(ShardedGolden, SingleShardTimelineRunMatchesPreRefactorBuild) {
  SimBackendConfig bcfg = GoldenBackendConfig(1);
  bcfg.events = FullTimeline();
  bcfg.sample_interval = 40'000;
  const BackendStats st =
      MakeSimBackend(BackendKind::kSharded, bcfg)->Run(200'000);

  EXPECT_EQ(st.reads, 159917u);
  EXPECT_EQ(st.writes, 40083u);
  EXPECT_EQ(st.cache_hits, 59286u);
  EXPECT_EQ(st.spine_hits, 28850u);
  EXPECT_EQ(st.leaf_hits, 30436u);
  EXPECT_EQ(st.server_reads, 98995u);
  EXPECT_EQ(st.dropped, 2148u);
  EXPECT_DOUBLE_EQ(st.hit_ratio(), 0.37072981609209776);
  EXPECT_DOUBLE_EQ(st.CacheImbalance(), 1.285477107402653);
  EXPECT_DOUBLE_EQ(st.ServerImbalance(), 1.7278636677037489);
  const LoadSummary spine = Summarize(st.spine_load());
  const LoadSummary leaf = Summarize(st.leaf_load());
  const LoadSummary server = Summarize(st.server_load);
  EXPECT_DOUBLE_EQ(spine.sum, 57452.0);
  EXPECT_DOUBLE_EQ(spine.max, 9387.0);
  EXPECT_DOUBLE_EQ(leaf.sum, 59398.0);
  EXPECT_DOUBLE_EQ(leaf.max, 9388.0);
  EXPECT_DOUBLE_EQ(server.sum, 145761.5);
  EXPECT_DOUBLE_EQ(server.max, 7870.5);
}

// Shard-count parity on the full timeline: the transport must not change what
// the cluster *does* — hit ratio, drop share and balance are shard-count
// invariants (within the statistical tolerance scheduling skew allows).
TEST(ShardedScaling, TimelineStatsParityAcross124Shards) {
  constexpr uint64_t kRequests = 400'000;
  std::vector<BackendStats> runs;
  for (uint32_t shards : {1u, 2u, 4u}) {
    SimBackendConfig bcfg = GoldenBackendConfig(shards);
    bcfg.events = FullTimeline();
    runs.push_back(MakeSimBackend(BackendKind::kSharded, bcfg)->Run(kRequests));
  }
  const BackendStats& ref = runs.front();
  ASSERT_GT(ref.hit_ratio(), 0.2);
  ASSERT_GT(ref.dropped, 0u);
  for (size_t i = 1; i < runs.size(); ++i) {
    const BackendStats& st = runs[i];
    EXPECT_EQ(st.requests, kRequests);
    EXPECT_NEAR(st.hit_ratio(), ref.hit_ratio(), 0.02) << "shards run " << i;
    EXPECT_NEAR(st.CacheImbalance(), ref.CacheImbalance(),
                0.12 * ref.CacheImbalance())
        << "shards run " << i;
    // Drops come from the blackhole window. Whether a given request is exposed
    // to it depends on PoT choices, which depend on telemetry arrival timing —
    // so multi-shard drop counts carry scheduling noise on top of the stream
    // split. 15% still catches the structural failures (drops doubling,
    // vanishing, or all landing on one shard).
    const double drop_ref = static_cast<double>(ref.dropped);
    EXPECT_NEAR(static_cast<double>(st.dropped), drop_ref, 0.15 * drop_ref)
        << "shards run " << i;
  }
}

// Transport accounting: data rides the rings, control stays low-rate, and the
// empty-inbox poll almost never touches the mutex.
TEST(ShardedScaling, DataPlaneRidesTheRings) {
  SimBackendConfig bcfg = GoldenBackendConfig(4);
  bcfg.epoch_requests = 4'096;
  const BackendStats st =
      MakeSimBackend(BackendKind::kSharded, bcfg)->Run(400'000);

  EXPECT_EQ(st.requests, 400'000u);
  // Telemetry epochs: each of the 4 shards broadcasts to 3 peers roughly every
  // 4096 local requests, plus the end-of-run delta flushes.
  EXPECT_GT(st.ring_messages, 100u);
  // Control traffic: only the kDone markers on an event-free run.
  EXPECT_EQ(st.cross_shard_messages - st.ring_messages, 4u * 3u);
  // The batch-boundary control poll must resolve lock-free when idle: one poll
  // per batch minimum, nearly all uncontended (the only contended ones absorb
  // the 12 kDone markers at shutdown).
  EXPECT_GT(st.uncontended_receives, 400'000u / 256u / 2u);
  EXPECT_LT(st.contended_receives, 64u);
}

}  // namespace
}  // namespace distcache
