// Compact route tables (the PR 9 memory tentpole): the table stores only the
// hot prefix of ranks that can ever be cached, and the engines recompute the
// uncached tail's server inline from the placement hash. The contract under
// test is *bit identity*: a run on compact tables must match a run on the
// pre-compaction dense layout field for field — same counters, same per-node
// load vectors to the last ulp — across engines, hierarchy depths, and the
// full failure/shift/realloc timeline. (The dense runs transitively match the
// PR 4/5/6 golden pins, which the golden tests assert against the compact
// default.)
#include <gtest/gtest.h>


#include "common/workload.h"
#include "sim/cluster_model.h"
#include "sim/route_table.h"
#include "sim/sim_backend.h"

namespace distcache {
namespace {

SimBackendConfig GoldenBackendConfig() {
  SimBackendConfig bcfg;
  bcfg.cluster.mechanism = Mechanism::kDistCache;
  bcfg.cluster.num_spine = 8;
  bcfg.cluster.num_racks = 8;
  bcfg.cluster.servers_per_rack = 4;
  bcfg.cluster.per_switch_objects = 50;
  bcfg.cluster.num_keys = 1'000'000;
  bcfg.cluster.zipf_theta = 0.99;
  bcfg.cluster.write_ratio = 0.2;
  bcfg.cluster.seed = 42;
  bcfg.batch_size = 64;
  return bcfg;
}

std::vector<ClusterEvent> FullTimeline() {
  return {
      ClusterEvent::FailSpine(40'000, 2),
      ClusterEvent::RunRecovery(60'000),
      ClusterEvent::ShiftHotspot(90'000, 12'345),
      ClusterEvent::ReallocateCache(120'000),
      ClusterEvent::RecoverSpine(150'000, 2),
  };
}

// Field-for-field equality, doubles included: compaction must not change one
// bit of any statistic.
void ExpectBitIdentical(const BackendStats& compact, const BackendStats& dense) {
  EXPECT_EQ(compact.requests, dense.requests);
  EXPECT_EQ(compact.reads, dense.reads);
  EXPECT_EQ(compact.writes, dense.writes);
  EXPECT_EQ(compact.cache_hits, dense.cache_hits);
  EXPECT_EQ(compact.spine_hits, dense.spine_hits);
  EXPECT_EQ(compact.leaf_hits, dense.leaf_hits);
  EXPECT_EQ(compact.server_reads, dense.server_reads);
  EXPECT_EQ(compact.dropped, dense.dropped);
  ASSERT_EQ(compact.cache_load.size(), dense.cache_load.size());
  for (size_t l = 0; l < compact.cache_load.size(); ++l) {
    EXPECT_EQ(compact.cache_load[l], dense.cache_load[l]) << "cache layer " << l;
  }
  EXPECT_EQ(compact.server_load, dense.server_load);
  ASSERT_EQ(compact.series.size(), dense.series.size());
  for (size_t i = 0; i < compact.series.size(); ++i) {
    EXPECT_EQ(compact.series[i].cache_hits, dense.series[i].cache_hits) << i;
    EXPECT_EQ(compact.series[i].dropped, dense.series[i].dropped) << i;
  }
}

// Engine sweep: {sequential, sharded x1} x {L=2, L=3} x {static, full
// timeline}, dense vs compact. x1 is the deterministic substrate the golden
// pins use — at 2+ shards the spine/leaf split is scheduling-dependent
// (telemetry arrival timing feeds the PoT choice), so bit-level comparison is
// only defined at one shard; multi-shard parity is sim_backend_test.cc's
// statistical job. Multiproc gets the same x1 treatment in multiproc_test.cc
// (it needs the runnability skip).
TEST(CompactRoutes, EnginesBitIdenticalToDenseTables) {
  constexpr uint64_t kRequests = 200'000;
  for (const BackendKind kind : {BackendKind::kSequential, BackendKind::kSharded}) {
    for (const size_t layers : {size_t{2}, size_t{3}}) {
      for (const bool timeline : {false, true}) {
        SimBackendConfig bcfg = GoldenBackendConfig();
        if (layers == 3) {
          bcfg.cluster.cache_layers.assign(3, LayerSpec{8, 50});
        }
        if (timeline) {
          bcfg.events = FullTimeline();
          bcfg.sample_interval = 40'000;
        }
        const BackendStats compact =
            MakeSimBackend(kind, bcfg)->Run(kRequests);
        SimBackendConfig dense_cfg = bcfg;
        dense_cfg.dense_routes = true;
        const BackendStats dense =
            MakeSimBackend(kind, dense_cfg)->Run(kRequests);
        SCOPED_TRACE((kind == BackendKind::kSequential ? "sequential" : "sharded") +
                     std::string(" L=") + std::to_string(layers) +
                     (timeline ? " timeline" : " static"));
        ExpectBitIdentical(compact, dense);
        // The dense build must actually be the pre-compaction layout and the
        // compact one must actually be small — guard against both modes
        // silently collapsing into one.
        EXPECT_GT(dense.route_table_bytes, compact.route_table_bytes);
      }
    }
  }
}

// Property test: the compact table is a strict prefix of the dense one, and
// every rank at or past the prefix is uncached in the dense build with exactly
// the server the placement hash yields — i.e. the branch-free fallback in
// EngineCore::Process reads the same route the dense entry stored.
TEST(CompactRoutes, TailRanksResolveToPlacementServer) {
  SimBackendConfig bcfg = GoldenBackendConfig();
  for (const uint64_t hot_shift : {uint64_t{0}, uint64_t{12'345}}) {
    ClusterModel model(bcfg.cluster);
    const RouteTable compact = BuildRouteTable(model, hot_shift);
    const RouteTable dense = BuildDenseRouteTable(model, hot_shift);
    ASSERT_EQ(dense.entries.size(), model.pool);
    ASSERT_LT(compact.entries.size(), dense.entries.size());
    if (hot_shift == 0) {
      // Identity rotation: the prefix is exactly the allocation's cached span.
      ASSERT_EQ(compact.entries.size(), model.allocation->CachedRankEnd());
    } else if (!compact.entries.empty()) {
      // Rotated rank space: the table ends at the deepest cached *table* rank
      // (a pre-refill shift can legally rotate every cached key out of the
      // pool window, leaving an empty prefix — all-fallback, still correct).
      EXPECT_NE(compact.entries.back().kind, RouteEntry::kUncached);
    }
    // Stored prefix: identical entries (field-wise: the struct has padding
    // bytes memcmp would trip on) and identical overflow runs.
    for (size_t rank = 0; rank < compact.entries.size(); ++rank) {
      const RouteEntry& c = compact.entries[rank];
      const RouteEntry& d = dense.entries[rank];
      ASSERT_TRUE(c.kind == d.kind && c.num == d.num && c.server == d.server &&
                  c.c0 == d.c0 && c.c1 == d.c1)
          << "prefix rank " << rank;
    }
    EXPECT_EQ(compact.overflow, dense.overflow);
    // Computed tail: every dropped entry was uncached with the placement server.
    for (size_t rank = compact.entries.size(); rank < dense.entries.size();
         ++rank) {
      const RouteEntry& e = dense.entries[rank];
      ASSERT_EQ(e.kind, RouteEntry::kUncached) << "rank " << rank;
      ASSERT_EQ(e.num, 0) << "rank " << rank;
      const uint64_t key = KeyOfRank(rank, hot_shift, bcfg.cluster.num_keys);
      ASSERT_EQ(e.server, model.placement.ServerOf(key)) << "rank " << rank;
    }
  }
}

// The memory claim at memory-wall geometry: with a candidate pool that
// approaches the key space and a cached set 100x smaller, the per-snapshot
// bytes drop >= 50x — and the builders reserve exactly (capacity == size, the
// no-doubling-spike fix), so bytes() measures real footprint.
TEST(CompactRoutes, SnapshotBytesDropAtMemwallGeometry) {
  SimBackendConfig bcfg = GoldenBackendConfig();
  bcfg.cluster.num_keys = 4'000'000;
  bcfg.cluster.candidate_pool = 2'000'000;
  ClusterModel model(bcfg.cluster, /*build_popularity=*/false);
  EXPECT_EQ(model.pool, 2'000'000u);
  const RouteTable compact = BuildRouteTable(model);
  const RouteTable dense = BuildDenseRouteTable(model);
  EXPECT_EQ(compact.entries.capacity(), compact.entries.size());
  EXPECT_EQ(compact.overflow.capacity(), compact.overflow.size());
  EXPECT_EQ(dense.entries.capacity(), dense.entries.size());
  EXPECT_GE(dense.bytes(), 50 * compact.bytes())
      << "dense " << dense.bytes() << " B vs compact " << compact.bytes() << " B";
}

// The candidate_pool override must leave the *default* auto shape untouched
// (0 = the historical 8x-budget pool every golden pins) and clamp to num_keys.
TEST(CompactRoutes, CandidatePoolOverrideDefaultsAndClamps) {
  SimBackendConfig bcfg = GoldenBackendConfig();
  const ClusterModel auto_model(bcfg.cluster, /*build_popularity=*/false);
  EXPECT_EQ(auto_model.pool, 8u * (8 + 8) * 50);
  bcfg.cluster.candidate_pool = bcfg.cluster.num_keys + 1'000'000;
  const ClusterModel clamped(bcfg.cluster, /*build_popularity=*/false);
  EXPECT_EQ(clamped.pool, bcfg.cluster.num_keys);
}

}  // namespace
}  // namespace distcache
