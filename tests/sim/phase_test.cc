// Phase-boundary tests for the phased workload timeline (common/workload.h +
// sim/engine_core.h): sampler-rebuild determinism, zero-length phases, shifts
// landing exactly on batch boundaries, and cross-engine behaviour of theta /
// write-ratio phase switches.
#include <gtest/gtest.h>

#include <cmath>

#include "common/alias_sampler.h"
#include "common/random.h"
#include "sim/sim_backend.h"

namespace distcache {
namespace {

SimBackendConfig SmallConfig() {
  SimBackendConfig cfg;
  cfg.cluster.mechanism = Mechanism::kDistCache;
  cfg.cluster.num_spine = 8;
  cfg.cluster.num_racks = 8;
  cfg.cluster.servers_per_rack = 4;
  cfg.cluster.per_switch_objects = 50;
  cfg.cluster.num_keys = 1'000'000;
  cfg.cluster.zipf_theta = 0.99;
  cfg.cluster.seed = 7;
  return cfg;
}

constexpr uint64_t kRequests = 200'000;

double RelDiff(double a, double b) {
  return b == 0.0 ? std::abs(a) : std::abs(a - b) / std::abs(b);
}

WorkloadPhase Phase(uint64_t start, double theta, double write, uint64_t shift) {
  WorkloadPhase p;
  p.start_request = start;
  p.zipf_theta = theta;
  p.write_ratio = write;
  p.hot_shift = shift;
  return p;
}

// Alias-table rebuild determinism: rebuilding from the same pmf twice produces
// identical tables — the same RNG state then yields the identical post-shift key
// stream, which is what keeps phased runs reproducible on every shard count.
TEST(PhaseBoundary, AliasRebuildIsDeterministic) {
  std::vector<double> pmf(1000);
  for (size_t i = 0; i < pmf.size(); ++i) {
    pmf[i] = 1.0 / static_cast<double>(i + 1);
  }
  const AliasSampler a(pmf);
  const AliasSampler b(pmf);
  Rng rng_a(123);
  Rng rng_b(123);
  std::vector<uint32_t> batch_a(4096);
  std::vector<uint32_t> batch_b(4096);
  a.SampleBatch(rng_a, batch_a.data(), batch_a.size());
  b.SampleBatch(rng_b, batch_b.data(), batch_b.size());
  EXPECT_EQ(batch_a, batch_b);
}

// End-to-end determinism with a phase timeline: same seed ⇒ identical aggregate
// counters, for the sequential engine and for a 1-shard sharded run (one request
// stream each, so equality is exact, sampler rebuilds and all).
TEST(PhaseBoundary, PhasedRunsAreDeterministicPerStream) {
  SimBackendConfig cfg = SmallConfig();
  cfg.phases = {Phase(0, 0.99, 0.0, 0),
                Phase(kRequests / 4, 0.9, 0.1, 1000),
                Phase(kRequests / 2, 0.95, 0.0, 500'000)};
  for (const BackendKind kind :
       {BackendKind::kSequential, BackendKind::kSharded}) {
    const BackendStats a = MakeSimBackend(kind, cfg)->Run(kRequests);
    const BackendStats b = MakeSimBackend(kind, cfg)->Run(kRequests);
    EXPECT_EQ(a.cache_hits, b.cache_hits);
    EXPECT_EQ(a.reads, b.reads);
    EXPECT_EQ(a.writes, b.writes);
    EXPECT_EQ(a.spine_hits, b.spine_hits);
    EXPECT_EQ(a.server_reads, b.server_reads);
  }
}

// 1-vs-N-shard parity under a phase timeline: each shard rebuilds its sampler at
// its scaled boundary, so aggregate stats must track the single-stream run.
TEST(PhaseBoundary, ShardCountParityUnderPhaseTimeline) {
  SimBackendConfig cfg = SmallConfig();
  cfg.phases = {Phase(0, 0.99, 0.0, 0),
                Phase(kRequests / 2, 0.9, 0.2, 0)};
  cfg.shards = 1;
  const BackendStats one = MakeSimBackend(BackendKind::kSharded, cfg)->Run(kRequests);
  cfg.shards = 4;
  const BackendStats four = MakeSimBackend(BackendKind::kSharded, cfg)->Run(kRequests);
  EXPECT_LT(RelDiff(four.hit_ratio(), one.hit_ratio()), 0.02);
  EXPECT_LT(RelDiff(static_cast<double>(four.writes),
                    static_cast<double>(one.writes)),
            0.05);
  EXPECT_LT(RelDiff(four.CacheImbalance(), one.CacheImbalance()), 0.05);
}

// A zero-length phase (two phases at the same timestamp) applies and is
// immediately superseded — the run is bit-identical to one with the survivor
// only. Guards the tie-break rule: later list entry wins, no RNG is consumed.
TEST(PhaseBoundary, ZeroLengthPhaseIsSuperseded) {
  SimBackendConfig with_zero = SmallConfig();
  with_zero.phases = {Phase(kRequests / 4, 0.5, 0.3, 123),
                      Phase(kRequests / 4, 0.9, 0.1, 1000)};
  SimBackendConfig survivor_only = SmallConfig();
  survivor_only.phases = {Phase(kRequests / 4, 0.9, 0.1, 1000)};
  const BackendStats a =
      MakeSimBackend(BackendKind::kSequential, with_zero)->Run(kRequests);
  const BackendStats b =
      MakeSimBackend(BackendKind::kSequential, survivor_only)->Run(kRequests);
  EXPECT_EQ(a.cache_hits, b.cache_hits);
  EXPECT_EQ(a.reads, b.reads);
  EXPECT_EQ(a.writes, b.writes);
  EXPECT_EQ(a.server_reads, b.server_reads);
}

// A shift scheduled exactly at a batch boundary (and at an exact per-shard quota
// split) applies once, cleanly: determinism holds, the request count is exact,
// and the post-shift collapse appears in the series exactly at the boundary.
TEST(PhaseBoundary, ShiftExactlyAtBatchBoundary) {
  SimBackendConfig cfg = SmallConfig();
  cfg.shards = 2;
  // 200'000 requests over 2 shards = 100'000/shard; the shift at 100'000 scales
  // to local clock 50'000 exactly, which with batch 50 is a batch edge — the
  // boundary-check equality case (at_local <= processed with at_local ==
  // processed) must fire exactly once, before the first post-boundary batch.
  cfg.batch_size = 50;
  cfg.sample_interval = kRequests / 10;
  cfg.events = {
      ClusterEvent::ShiftHotspot(kRequests / 2, cfg.cluster.num_keys / 2)};
  const BackendStats a = MakeSimBackend(BackendKind::kSharded, cfg)->Run(kRequests);
  const BackendStats b = MakeSimBackend(BackendKind::kSharded, cfg)->Run(kRequests);
  EXPECT_EQ(a.requests, kRequests);
  EXPECT_EQ(a.cache_hits, b.cache_hits);
  ASSERT_EQ(a.series.size(), 10u);
  EXPECT_GT(a.series[3].hit_ratio(), 0.3);   // healthy before the boundary
  EXPECT_LT(a.series[6].hit_ratio(), 0.05);  // collapsed right after it
}

// Write-ratio phases charge coherence costs only while active: a run that is
// read-only in phase 0 and 30% writes in phase 1 must land between the two
// static extremes on write count, and conserve total charged load.
TEST(PhaseBoundary, WriteRatioPhaseTakesEffectMidRun) {
  SimBackendConfig cfg = SmallConfig();
  cfg.phases = {Phase(kRequests / 2, 0.99, 0.3, 0)};
  const BackendStats st =
      MakeSimBackend(BackendKind::kSequential, cfg)->Run(kRequests);
  // Writes only in the second half: expectation 0.3 * kRequests / 2.
  const double expected = 0.3 * static_cast<double>(kRequests) / 2.0;
  EXPECT_GT(static_cast<double>(st.writes), 0.8 * expected);
  EXPECT_LT(static_cast<double>(st.writes), 1.2 * expected);
}

// Phase timestamps at or beyond the Run never fire (same contract as events).
TEST(PhaseBoundary, PhaseAtRunEndNeverFires) {
  SimBackendConfig cfg = SmallConfig();
  SimBackendConfig with_late = cfg;
  with_late.phases = {Phase(kRequests, 0.5, 0.5, 42)};
  const BackendStats a = MakeSimBackend(BackendKind::kSequential, cfg)->Run(kRequests);
  const BackendStats b =
      MakeSimBackend(BackendKind::kSequential, with_late)->Run(kRequests);
  EXPECT_EQ(a.cache_hits, b.cache_hits);
  EXPECT_EQ(a.writes, b.writes);
}

// An empty phase list must leave the engines bit-identical to their historical
// behaviour (no extra RNG draws) — the phased-timeline analogue of the
// empty-event-timeline identity.
TEST(PhaseBoundary, EmptyPhaseListIsIdentity) {
  const SimBackendConfig cfg = SmallConfig();
  SimBackendConfig with_empty = cfg;
  with_empty.phases.clear();
  const BackendStats a = MakeSimBackend(BackendKind::kSequential, cfg)->Run(100'000);
  const BackendStats b =
      MakeSimBackend(BackendKind::kSequential, with_empty)->Run(100'000);
  EXPECT_EQ(a.cache_hits, b.cache_hits);
  EXPECT_EQ(a.spine_hits, b.spine_hits);
  EXPECT_EQ(a.server_reads, b.server_reads);
}

}  // namespace
}  // namespace distcache
