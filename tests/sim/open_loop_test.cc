// Open-loop virtual time (EngineCore::ConfigureOpenLoop): arrival process,
// per-node FIFO queueing, and the latency histograms it produces — plus the
// contract that enabling none of it leaves the closed-loop path untouched.
#include <gtest/gtest.h>

#include <cmath>

#include "cluster/latency.h"
#include "sim/sim_backend.h"

namespace distcache {
namespace {

SimBackendConfig BaseConfig() {
  SimBackendConfig cfg;
  cfg.cluster.mechanism = Mechanism::kDistCache;
  cfg.cluster.num_spine = 8;
  cfg.cluster.num_racks = 8;
  cfg.cluster.servers_per_rack = 16;
  cfg.cluster.per_switch_objects = 50;
  cfg.cluster.num_keys = 1'000'000;
  cfg.cluster.zipf_theta = 0.99;
  cfg.cluster.seed = 42;
  return cfg;
}

SimBackendConfig OpenLoopConfig(double lambda) {
  SimBackendConfig cfg = BaseConfig();
  cfg.queue.arrival.rate = lambda;
  cfg.queue.service_rates = {6.0};
  cfg.queue.server_service_rate = 1.0;
  cfg.queue.hop_cost = 0.2;
  return cfg;
}

constexpr uint64_t kRequests = 200'000;

// The clock is a pure overlay: every counter and every load cell of an
// open-loop run must be bit-identical to the closed-loop run with the same
// seed — the time RNG is a separate stream and the request path is unchanged.
TEST(OpenLoop, CountersBitIdenticalToClosedLoop) {
  const BackendStats closed =
      MakeSimBackend(BackendKind::kSequential, BaseConfig())->Run(kRequests);
  const BackendStats open =
      MakeSimBackend(BackendKind::kSequential, OpenLoopConfig(24.0))
          ->Run(kRequests);
  EXPECT_TRUE(closed.latency.empty());
  EXPECT_FALSE(open.latency.empty());
  EXPECT_EQ(open.reads, closed.reads);
  EXPECT_EQ(open.cache_hits, closed.cache_hits);
  EXPECT_EQ(open.spine_hits, closed.spine_hits);
  EXPECT_EQ(open.leaf_hits, closed.leaf_hits);
  EXPECT_EQ(open.server_reads, closed.server_reads);
  ASSERT_EQ(open.server_load.size(), closed.server_load.size());
  for (size_t i = 0; i < open.server_load.size(); ++i) {
    EXPECT_DOUBLE_EQ(open.server_load[i], closed.server_load[i]) << "server " << i;
  }
}

// Every delivered request records exactly one latency sample, in every engine:
// the histogram total equals the delivered count.
TEST(OpenLoop, OneSamplePerDeliveredRequest) {
  for (const BackendKind kind :
       {BackendKind::kSequential, BackendKind::kSharded}) {
    SimBackendConfig cfg = OpenLoopConfig(24.0);
    cfg.shards = kind == BackendKind::kSharded ? 4 : 1;
    const BackendStats st = MakeSimBackend(kind, cfg)->Run(kRequests);
    EXPECT_EQ(st.latency.total(), st.requests - st.dropped)
        << "backend kind " << static_cast<int>(kind);
  }
}

// The Poisson arrival process is deterministic per seed: two open-loop runs
// agree bucket-for-bucket.
TEST(OpenLoop, DeterministicPerSeed) {
  const SimBackendConfig cfg = OpenLoopConfig(24.0);
  const BackendStats a =
      MakeSimBackend(BackendKind::kSequential, cfg)->Run(kRequests);
  const BackendStats b =
      MakeSimBackend(BackendKind::kSequential, cfg)->Run(kRequests);
  EXPECT_EQ(a.latency.counts(), b.latency.counts());
  EXPECT_EQ(a.latency.total(), b.latency.total());
}

// Shard-merged histograms agree across shard counts within bucket resolution:
// each shard is an independent full-rate slice of the same arrival process, so
// the union's percentiles converge to the one-shard run's (exact bucket
// equality is impossible by construction — the time streams differ per shard).
TEST(OpenLoop, PercentilesAgreeAcrossShardCounts) {
  SimBackendConfig cfg = OpenLoopConfig(24.0);
  cfg.shards = 1;
  const BackendStats one =
      MakeSimBackend(BackendKind::kSharded, cfg)->Run(kRequests);
  for (uint32_t shards : {2u, 4u}) {
    cfg.shards = shards;
    const BackendStats many =
        MakeSimBackend(BackendKind::kSharded, cfg)->Run(kRequests);
    EXPECT_EQ(many.latency.total(), many.requests - many.dropped);
    for (const double p : {50.0, 99.0}) {
      const double a = one.latency.Percentile(p);
      const double b = many.latency.Percentile(p);
      EXPECT_LT(std::abs(a - b) / a, 0.10)
          << shards << " shards: p" << p << " " << b << " vs " << a;
    }
  }
}

// Light-load validation against the fluid engine's M/M/1 closed form: the
// measured median must track the analytic mixture's within model error (the
// histogram resolves ~4.4% per bucket; the fluid load split adds a few
// percent more).
TEST(OpenLoop, LightLoadMedianTracksAnalyticForm) {
  const SimBackendConfig cfg = OpenLoopConfig(8.0);
  const BackendStats measured =
      MakeSimBackend(BackendKind::kSequential, cfg)->Run(kRequests);
  const BackendStats fluid =
      MakeSimBackend(BackendKind::kFluid, cfg)->Run(kRequests);
  ASSERT_FALSE(fluid.latency.empty());
  const double analytic = fluid.latency.Percentile(50.0);
  const double p50 = measured.latency.Percentile(50.0);
  EXPECT_LT(std::abs(p50 - analytic) / analytic, 0.15)
      << "measured p50 " << p50 << " vs analytic " << analytic;
  // Neither side saturates at this load.
  EXPECT_EQ(measured.latency.infinite(), 0u);
  EXPECT_EQ(fluid.latency.infinite(), 0u);
}

// Burst phases raise the measured tail: the same mean-adjusted load delivered
// in bursts must queue harder than the smooth process.
TEST(OpenLoop, BurstsInflateTail) {
  SimBackendConfig smooth = OpenLoopConfig(48.0);
  SimBackendConfig bursty = OpenLoopConfig(48.0);
  bursty.queue.arrival.burst_factor = 2.0;
  bursty.queue.arrival.burst_every = 200.0;
  bursty.queue.arrival.burst_duration = 50.0;
  const BackendStats a =
      MakeSimBackend(BackendKind::kSequential, smooth)->Run(kRequests);
  const BackendStats b =
      MakeSimBackend(BackendKind::kSequential, bursty)->Run(kRequests);
  EXPECT_GT(b.latency.Percentile(99.0), a.latency.Percentile(99.0));
}

}  // namespace
}  // namespace distcache
