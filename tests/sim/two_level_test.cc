// Two-level workload sampling (opt-in, SimBackendConfig::two_level_sampling):
// an alias table over the hot head plus closed-form inverse-CDF for the
// capped-Zipf cold head and tail, O(hot) memory instead of O(pool). The mode
// is a different RNG stream by design, so it is validated *differentially* —
// the sampled distribution must match the exact pmf, and engine aggregates
// must match the dense-sampler reference within statistical tolerance — and
// never against the bit-exact goldens.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/alias_sampler.h"
#include "common/random.h"
#include "common/zipf.h"
#include "sim/sim_backend.h"

namespace distcache {
namespace {

double RelDiff(double a, double b) {
  return b == 0.0 ? std::abs(a) : std::abs(a - b) / std::abs(b);
}

SimBackendConfig SmallConfig() {
  SimBackendConfig bcfg;
  bcfg.cluster.mechanism = Mechanism::kDistCache;
  bcfg.cluster.num_spine = 8;
  bcfg.cluster.num_racks = 8;
  bcfg.cluster.servers_per_rack = 4;
  bcfg.cluster.per_switch_objects = 50;
  bcfg.cluster.num_keys = 1'000'000;
  bcfg.cluster.zipf_theta = 0.99;
  bcfg.cluster.seed = 7;
  return bcfg;
}

// Direct distribution check against the exact Zipf pmf: individual hot ranks,
// the aggregate cold-head mass (where the closed-form inversion runs), and the
// aggregate tail bucket.
TEST(TwoLevelSampler, MatchesExactZipfMasses) {
  constexpr uint64_t kKeys = 1'000'000;
  constexpr uint64_t kPool = 51'200;
  constexpr uint64_t kHot = 4'096;
  constexpr double kTheta = 0.99;
  constexpr size_t kDraws = 2'000'000;
  const ZipfDistribution exact(kKeys, kTheta);
  const TwoLevelSampler sampler(kKeys, kTheta, kPool, kHot);
  Rng rng(0x7e57ed);

  std::vector<uint64_t> hot_counts(16, 0);
  uint64_t hot_total = 0;
  uint64_t cold_head = 0;
  uint64_t tail = 0;
  std::vector<uint64_t> cold_decile(10, 0);
  for (size_t i = 0; i < kDraws; ++i) {
    const uint32_t b = sampler.Sample(rng);
    ASSERT_LE(b, kPool);
    if (b < kHot) {
      ++hot_total;
      if (b < hot_counts.size()) {
        ++hot_counts[b];
      }
    } else if (b < kPool) {
      ++cold_head;
      ++cold_decile[(b - kHot) * 10 / (kPool - kHot)];
    } else {
      ++tail;
    }
  }

  const double n = static_cast<double>(kDraws);
  // Top ranks individually: each carries >= ~0.1% mass, so 2M draws give
  // sub-percent sampling noise; 5% tolerance is generous.
  for (size_t r = 0; r < hot_counts.size(); ++r) {
    EXPECT_LT(RelDiff(hot_counts[r] / n, exact.Pmf(r)), 0.05) << "rank " << r;
  }
  EXPECT_LT(RelDiff(hot_total / n, exact.TopMass(kHot)), 0.01);
  EXPECT_LT(RelDiff(cold_head / n, exact.TopMass(kPool) - exact.TopMass(kHot)),
            0.02);
  EXPECT_LT(RelDiff(tail / n, 1.0 - exact.TopMass(kPool)), 0.02);
  // Inside the cold head the closed-form inversion must reproduce the power
  // law's *shape*, not just its total: check coarse deciles.
  const double cold_mass = exact.TopMass(kPool) - exact.TopMass(kHot);
  for (size_t d = 0; d < 10; ++d) {
    const uint64_t lo = kHot + d * (kPool - kHot) / 10;
    const uint64_t hi = kHot + (d + 1) * (kPool - kHot) / 10;
    const double want = exact.TopMass(hi) - exact.TopMass(lo);
    ASSERT_GT(want, 0.0);
    EXPECT_LT(RelDiff(cold_decile[d] / n, want), 0.05)
        << "cold decile " << d << " of mass " << want / cold_mass;
  }
}

TEST(TwoLevelSampler, UniformThetaIsExactlyUniformAcrossBuckets) {
  constexpr uint64_t kKeys = 100'000;
  constexpr uint64_t kPool = 10'000;
  constexpr uint64_t kHot = 256;
  const TwoLevelSampler sampler(kKeys, 0.0, kPool, kHot);
  Rng rng(99);
  uint64_t head = 0;
  constexpr size_t kDraws = 1'000'000;
  for (size_t i = 0; i < kDraws; ++i) {
    if (sampler.Sample(rng) < kPool) {
      ++head;
    }
  }
  EXPECT_LT(RelDiff(head / static_cast<double>(kDraws),
                    static_cast<double>(kPool) / kKeys),
            0.03);
}

// Memory is the point: the two-level sampler must be orders of magnitude
// smaller than the dense O(pool) structures it replaces.
TEST(TwoLevelSampler, BytesAreOHotNotOPool) {
  constexpr uint64_t kPool = 2'000'000;
  const TwoLevelSampler two(4'000'000, 0.99, kPool);
  // Dense baseline: one pmf entry + one cdf entry per pool rank.
  const size_t dense_bytes = 2 * (kPool + 1) * sizeof(double);
  EXPECT_GE(dense_bytes, 20 * two.bytes())
      << "two-level " << two.bytes() << " B vs dense " << dense_bytes << " B";
}

// Engine-level differential: every request backend under two_level_sampling
// must reproduce the dense reference's aggregates within statistical
// tolerance (same cluster, same cached set — only the workload RNG stream
// differs).
TEST(TwoLevelSampling, BackendsMatchDenseReferenceAggregates) {
  constexpr uint64_t kRequests = 400'000;
  const SimBackendConfig ref_cfg = SmallConfig();
  const BackendStats ref =
      MakeSimBackend(BackendKind::kSequential, ref_cfg)->Run(kRequests);
  for (const BackendKind kind : {BackendKind::kSequential, BackendKind::kSharded}) {
    SimBackendConfig bcfg = SmallConfig();
    bcfg.two_level_sampling = true;
    if (kind == BackendKind::kSharded) {
      bcfg.shards = 4;
    }
    const BackendStats st = MakeSimBackend(kind, bcfg)->Run(kRequests);
    SCOPED_TRACE(kind == BackendKind::kSequential ? "sequential" : "sharded x4");
    EXPECT_EQ(st.requests, kRequests);
    EXPECT_LT(RelDiff(st.hit_ratio(), ref.hit_ratio()), 0.02)
        << st.hit_ratio() << " vs " << ref.hit_ratio();
    EXPECT_LT(RelDiff(st.CacheImbalance(), ref.CacheImbalance()), 0.05);
    EXPECT_LT(RelDiff(st.ServerImbalance(), ref.ServerImbalance()), 0.05);
    // Load conservation holds exactly regardless of the sampler: every read
    // charges one unit somewhere (read-only workload).
    double total = 0.0;
    for (const auto& layer : st.cache_load) {
      for (double x : layer) total += x;
    }
    for (double x : st.server_load) total += x;
    EXPECT_NEAR(total, static_cast<double>(kRequests), 1e-6);
    // And the sampler the run reports is the small one.
    EXPECT_GT(st.sampler_bytes, 0u);
    EXPECT_LT(st.sampler_bytes, ref.sampler_bytes);
  }
}

}  // namespace
}  // namespace distcache
