#include "sim/sim_backend.h"

#include <gtest/gtest.h>

#include <cmath>

namespace distcache {
namespace {

SimBackendConfig SmallConfig() {
  SimBackendConfig cfg;
  cfg.cluster.mechanism = Mechanism::kDistCache;
  cfg.cluster.num_spine = 8;
  cfg.cluster.num_racks = 8;
  cfg.cluster.servers_per_rack = 4;
  cfg.cluster.per_switch_objects = 50;
  cfg.cluster.num_keys = 1'000'000;
  cfg.cluster.zipf_theta = 0.99;
  cfg.cluster.seed = 7;
  return cfg;
}

constexpr uint64_t kRequests = 400'000;

double RelDiff(double a, double b) {
  return b == 0.0 ? std::abs(a) : std::abs(a - b) / std::abs(b);
}

TEST(SequentialBackend, ExactlyDeterministicForSameSeed) {
  const SimBackendConfig cfg = SmallConfig();
  const BackendStats a =
      MakeSimBackend(BackendKind::kSequential, cfg)->Run(kRequests);
  const BackendStats b =
      MakeSimBackend(BackendKind::kSequential, cfg)->Run(kRequests);
  EXPECT_EQ(a.cache_hits, b.cache_hits);
  EXPECT_EQ(a.spine_hits, b.spine_hits);
  EXPECT_EQ(a.leaf_hits, b.leaf_hits);
  EXPECT_EQ(a.server_reads, b.server_reads);
  ASSERT_EQ(a.server_load.size(), b.server_load.size());
  for (size_t i = 0; i < a.server_load.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.server_load[i], b.server_load[i]) << "server " << i;
  }
}

// The tentpole determinism criterion: the same seed must produce the same aggregate
// statistics whether the cluster is simulated on 1 shard or N shards — within
// statistical tolerance, since each shard samples its own request slice.
TEST(ShardedBackend, AggregateStatsMatchAcrossShardCounts) {
  SimBackendConfig cfg = SmallConfig();
  cfg.shards = 1;
  const BackendStats one =
      MakeSimBackend(BackendKind::kSharded, cfg)->Run(kRequests);
  for (uint32_t shards : {2u, 4u}) {
    cfg.shards = shards;
    const BackendStats many =
        MakeSimBackend(BackendKind::kSharded, cfg)->Run(kRequests);
    EXPECT_EQ(many.requests, kRequests);
    EXPECT_LT(RelDiff(many.hit_ratio(), one.hit_ratio()), 0.02)
        << shards << " shards: hit ratio " << many.hit_ratio() << " vs "
        << one.hit_ratio();
    EXPECT_LT(RelDiff(many.CacheImbalance(), one.CacheImbalance()), 0.05)
        << shards << " shards: cache imbalance " << many.CacheImbalance()
        << " vs " << one.CacheImbalance();
    EXPECT_LT(RelDiff(many.ServerImbalance(), one.ServerImbalance()), 0.05)
        << shards << " shards: server imbalance " << many.ServerImbalance()
        << " vs " << one.ServerImbalance();
  }
}

// The sharded runtime must reproduce the sequential reference's statistics: same
// hit ratio and load shape, within the tolerance the acceptance criteria demand.
TEST(ShardedBackend, MatchesSequentialReference) {
  SimBackendConfig cfg = SmallConfig();
  const BackendStats seq =
      MakeSimBackend(BackendKind::kSequential, cfg)->Run(kRequests);
  cfg.shards = 4;
  const BackendStats shard =
      MakeSimBackend(BackendKind::kSharded, cfg)->Run(kRequests);
  EXPECT_LT(RelDiff(shard.hit_ratio(), seq.hit_ratio()), 0.05);
  EXPECT_LT(RelDiff(shard.CacheImbalance(), seq.CacheImbalance()), 0.05);
  EXPECT_LT(RelDiff(shard.ServerImbalance(), seq.ServerImbalance()), 0.05);
  // Total charged load must be conserved: every read costs exactly one unit
  // somewhere (read-only workload).
  double seq_total = 0.0;
  double shard_total = 0.0;
  for (const auto* v : {&seq.spine_load(), &seq.leaf_load(), &seq.server_load}) {
    for (double x : *v) seq_total += x;
  }
  for (const auto* v : {&shard.spine_load(), &shard.leaf_load(), &shard.server_load}) {
    for (double x : *v) shard_total += x;
  }
  EXPECT_NEAR(seq_total, static_cast<double>(kRequests), 1e-6);
  EXPECT_NEAR(shard_total, static_cast<double>(kRequests), 1e-6);
}

// Request-level hit ratios must converge to the fluid model's analytic cached mass.
TEST(Backends, HitRatioMatchesFluidAnalytic) {
  SimBackendConfig cfg = SmallConfig();
  const BackendStats fluid =
      MakeSimBackend(BackendKind::kFluid, cfg)->Run(kRequests);
  const BackendStats seq =
      MakeSimBackend(BackendKind::kSequential, cfg)->Run(kRequests);
  EXPECT_LT(RelDiff(seq.hit_ratio(), fluid.hit_ratio()), 0.02)
      << "sequential " << seq.hit_ratio() << " vs fluid " << fluid.hit_ratio();
}

// Writes charge coherence costs: with a write ratio the cache layers absorb
// coherence_switch_cost per cached copy and servers pay the two-phase overhead.
TEST(Backends, WriteCoherenceCostsMatchBetweenEngines) {
  SimBackendConfig cfg = SmallConfig();
  cfg.cluster.write_ratio = 0.2;
  const BackendStats seq =
      MakeSimBackend(BackendKind::kSequential, cfg)->Run(kRequests);
  cfg.shards = 4;
  const BackendStats shard =
      MakeSimBackend(BackendKind::kSharded, cfg)->Run(kRequests);
  EXPECT_GT(seq.writes, kRequests / 10);
  EXPECT_LT(RelDiff(static_cast<double>(shard.writes), static_cast<double>(seq.writes)),
            0.05);
  double seq_total = 0.0;
  double shard_total = 0.0;
  for (const auto* v : {&seq.spine_load(), &seq.leaf_load(), &seq.server_load}) {
    for (double x : *v) seq_total += x;
  }
  for (const auto* v : {&shard.spine_load(), &shard.leaf_load(), &shard.server_load}) {
    for (double x : *v) shard_total += x;
  }
  EXPECT_LT(RelDiff(shard_total, seq_total), 0.05);
}

TEST(ShardedBackend, ShardCountDoesNotChangeRequestTotal) {
  SimBackendConfig cfg = SmallConfig();
  cfg.shards = 3;  // does not divide kRequests evenly
  const BackendStats st =
      MakeSimBackend(BackendKind::kSharded, cfg)->Run(100'001);
  EXPECT_EQ(st.requests, 100'001u);
  EXPECT_EQ(st.reads + st.writes, 100'001u);
}

}  // namespace
}  // namespace distcache
