// Multi-process backend tests (sim/multiproc_backend.h):
//
//  * x1 bit-identity — a one-process multiproc run exchanges no messages, so it
//    must reproduce the in-process sharded engine's golden pins bit for bit
//    (the same constants scaling_test.cc pins, static and full-timeline): the
//    substrate swap — fork, arena rings, stats codec — is a strict behavioral
//    no-op for the simulated cluster.
//  * multi-process parity — hit ratio, balance and drop counters agree across
//    1, 2 and 4 shard processes within the same statistical tolerance as the
//    in-process engine (telemetry arrival timing is scheduling-dependent by
//    design, now across processes).
//  * crash isolation — a shard process SIGKILLed mid-run must be detected by
//    the supervisor: the run returns (never hangs) with the survivors' partial
//    stats and failed_shards reporting the dead shard.
//  * stats codec — the arena hand-off format round-trips BackendStats exactly,
//    doubles bit for bit, and rejects truncated buffers.
//
// Everything that forks is skipped under TSan (TSan's runtime does not follow
// fork-without-exec children; the in-process engines keep TSan coverage of the
// shared ring/transport logic) and on hosts where the arena cannot be mapped.
#include <gtest/gtest.h>

#include <cmath>

#include "sim/multiproc_backend.h"
#include "sim/sim_backend.h"
#include "sim/stats_codec.h"

#if defined(__SANITIZE_THREAD__)
#define DISTCACHE_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define DISTCACHE_TSAN 1
#endif
#endif

namespace distcache {
namespace {

bool MultiprocRunnable() {
#if defined(DISTCACHE_TSAN)
  return false;
#else
  return MultiprocBackend::Supported();
#endif
}

#define SKIP_UNLESS_MULTIPROC_RUNNABLE()                                  \
  do {                                                                    \
    if (!MultiprocRunnable()) {                                           \
      GTEST_SKIP() << "multiproc backend not runnable here (TSan build, " \
                      "non-Linux, or shm arena unavailable)";             \
    }                                                                     \
  } while (0)

// The scaling_test.cc golden cluster (8 spines, 8 racks, 4 servers/rack, 1M
// keys, zipf 0.99, 20% writes, seed 42) and batch size — the bit-level pins
// are only valid at the batch size they were captured under.
SimBackendConfig GoldenBackendConfig(uint32_t shards) {
  SimBackendConfig bcfg;
  bcfg.cluster.num_spine = 8;
  bcfg.cluster.num_racks = 8;
  bcfg.cluster.servers_per_rack = 4;
  bcfg.cluster.per_switch_objects = 50;
  bcfg.cluster.num_keys = 1'000'000;
  bcfg.cluster.zipf_theta = 0.99;
  bcfg.cluster.write_ratio = 0.2;
  bcfg.cluster.seed = 42;
  bcfg.shards = shards;
  bcfg.batch_size = 64;
  return bcfg;
}

std::vector<ClusterEvent> FullTimeline() {
  return {ClusterEvent::FailSpine(40'000, 2), ClusterEvent::RunRecovery(60'000),
          ClusterEvent::ShiftHotspot(90'000, 12'345),
          ClusterEvent::ReallocateCache(120'000),
          ClusterEvent::RecoverSpine(150'000, 2)};
}

struct LoadSummary {
  double sum = 0.0;
  double max = 0.0;
};

LoadSummary Summarize(const std::vector<double>& loads) {
  LoadSummary s;
  for (double x : loads) {
    s.sum += x;
    s.max = std::max(s.max, x);
  }
  return s;
}

// The exact constants ShardedGolden.SingleShardStaticRunMatchesPreRefactorBuild
// pins for the in-process engine: one substrate's goldens are the other's.
TEST(MultiprocGolden, SingleProcessStaticRunMatchesShardedGolden) {
  SKIP_UNLESS_MULTIPROC_RUNNABLE();
  const BackendStats st =
      MakeSimBackend(BackendKind::kMultiproc, GoldenBackendConfig(1))
          ->Run(200'000);

  EXPECT_EQ(st.reads, 159921u);
  EXPECT_EQ(st.writes, 40079u);
  EXPECT_EQ(st.cache_hits, 70684u);
  EXPECT_EQ(st.spine_hits, 37907u);
  EXPECT_EQ(st.leaf_hits, 32777u);
  EXPECT_EQ(st.server_reads, 89237u);
  EXPECT_EQ(st.dropped, 0u);
  EXPECT_EQ(st.failed_shards, 0u);
  EXPECT_DOUBLE_EQ(st.hit_ratio(), 0.4419932341593662);
  EXPECT_DOUBLE_EQ(st.CacheImbalance(), 1.6847555511301404);
  EXPECT_DOUBLE_EQ(st.ServerImbalance(), 2.463468562519127);
  const LoadSummary spine = Summarize(st.spine_load());
  const LoadSummary leaf = Summarize(st.leaf_load());
  const LoadSummary server = Summarize(st.server_load);
  EXPECT_DOUBLE_EQ(spine.sum, 72909.0);
  EXPECT_DOUBLE_EQ(spine.max, 14805.0);
  EXPECT_DOUBLE_EQ(leaf.sum, 67693.0);
  EXPECT_DOUBLE_EQ(leaf.max, 14805.0);
  EXPECT_DOUBLE_EQ(server.sum, 138055.75);
  EXPECT_DOUBLE_EQ(server.max, 10628.0);
  // One process: nothing crosses the arena.
  EXPECT_EQ(st.cross_shard_messages, 0u);
  EXPECT_EQ(st.ring_messages, 0u);
  EXPECT_EQ(st.contended_receives, 0u);
}

// And the full failure+shift+realloc timeline pins: the locally-queued
// timeline and the all-to-all realloc rendezvous must collapse, at one
// process, to exactly the in-process controller's computation.
TEST(MultiprocGolden, SingleProcessTimelineRunMatchesShardedGolden) {
  SKIP_UNLESS_MULTIPROC_RUNNABLE();
  SimBackendConfig bcfg = GoldenBackendConfig(1);
  bcfg.events = FullTimeline();
  bcfg.sample_interval = 40'000;
  const BackendStats st =
      MakeSimBackend(BackendKind::kMultiproc, bcfg)->Run(200'000);

  EXPECT_EQ(st.reads, 159917u);
  EXPECT_EQ(st.writes, 40083u);
  EXPECT_EQ(st.cache_hits, 59286u);
  EXPECT_EQ(st.spine_hits, 28850u);
  EXPECT_EQ(st.leaf_hits, 30436u);
  EXPECT_EQ(st.server_reads, 98995u);
  EXPECT_EQ(st.dropped, 2148u);
  EXPECT_DOUBLE_EQ(st.hit_ratio(), 0.37072981609209776);
  EXPECT_DOUBLE_EQ(st.CacheImbalance(), 1.285477107402653);
  EXPECT_DOUBLE_EQ(st.ServerImbalance(), 1.7278636677037489);
  const LoadSummary spine = Summarize(st.spine_load());
  const LoadSummary leaf = Summarize(st.leaf_load());
  const LoadSummary server = Summarize(st.server_load);
  EXPECT_DOUBLE_EQ(spine.sum, 57452.0);
  EXPECT_DOUBLE_EQ(spine.max, 9387.0);
  EXPECT_DOUBLE_EQ(leaf.sum, 59398.0);
  EXPECT_DOUBLE_EQ(leaf.max, 9388.0);
  EXPECT_DOUBLE_EQ(server.sum, 145761.5);
  EXPECT_DOUBLE_EQ(server.max, 7870.5);
  // The series geometry survives the codec hand-off (200k / 40k intervals).
  EXPECT_EQ(st.series.size(), 5u);
}

// Belt and braces beyond the pinned constants: whatever the in-process engine
// computes at x1 today — including future legitimate golden updates — the
// multiproc substrate must match it field for field.
TEST(MultiprocGolden, SingleProcessTracksInProcessShardedExactly) {
  SKIP_UNLESS_MULTIPROC_RUNNABLE();
  SimBackendConfig bcfg = GoldenBackendConfig(1);
  bcfg.events = FullTimeline();
  bcfg.sample_interval = 50'000;
  bcfg.queue.arrival.rate = 24.0;  // open-loop: exercises the latency path
  const BackendStats sharded =
      MakeSimBackend(BackendKind::kSharded, bcfg)->Run(150'000);
  const BackendStats multiproc =
      MakeSimBackend(BackendKind::kMultiproc, bcfg)->Run(150'000);

  EXPECT_EQ(multiproc.requests, sharded.requests);
  EXPECT_EQ(multiproc.reads, sharded.reads);
  EXPECT_EQ(multiproc.cache_hits, sharded.cache_hits);
  EXPECT_EQ(multiproc.spine_hits, sharded.spine_hits);
  EXPECT_EQ(multiproc.server_reads, sharded.server_reads);
  EXPECT_EQ(multiproc.dropped, sharded.dropped);
  ASSERT_EQ(multiproc.cache_load.size(), sharded.cache_load.size());
  for (size_t l = 0; l < sharded.cache_load.size(); ++l) {
    ASSERT_EQ(multiproc.cache_load[l].size(), sharded.cache_load[l].size());
    for (size_t i = 0; i < sharded.cache_load[l].size(); ++i) {
      EXPECT_EQ(multiproc.cache_load[l][i], sharded.cache_load[l][i])
          << "layer " << l << " node " << i;  // bit-exact, not NEAR
    }
  }
  EXPECT_EQ(multiproc.latency.total(), sharded.latency.total());
  EXPECT_EQ(multiproc.latency.finite_sum(), sharded.latency.finite_sum());
  ASSERT_EQ(multiproc.series.size(), sharded.series.size());
  for (size_t i = 0; i < sharded.series.size(); ++i) {
    EXPECT_EQ(multiproc.series[i].requests, sharded.series[i].requests);
    EXPECT_EQ(multiproc.series[i].cache_hits, sharded.series[i].cache_hits);
  }
}

// Shard-process parity on the full timeline, mirroring the in-process
// tolerance test: the process substrate must not change what the cluster does.
TEST(MultiprocScaling, TimelineStatsParityAcross124Processes) {
  SKIP_UNLESS_MULTIPROC_RUNNABLE();
  constexpr uint64_t kRequests = 400'000;
  std::vector<BackendStats> runs;
  for (uint32_t shards : {1u, 2u, 4u}) {
    SimBackendConfig bcfg = GoldenBackendConfig(shards);
    bcfg.events = FullTimeline();
    runs.push_back(
        MakeSimBackend(BackendKind::kMultiproc, bcfg)->Run(kRequests));
  }
  const BackendStats& ref = runs.front();
  ASSERT_GT(ref.hit_ratio(), 0.2);
  ASSERT_GT(ref.dropped, 0u);
  for (size_t i = 1; i < runs.size(); ++i) {
    const BackendStats& st = runs[i];
    EXPECT_EQ(st.requests, kRequests);
    EXPECT_EQ(st.failed_shards, 0u);
    EXPECT_NEAR(st.hit_ratio(), ref.hit_ratio(), 0.02) << "shards run " << i;
    EXPECT_NEAR(st.CacheImbalance(), ref.CacheImbalance(),
                0.12 * ref.CacheImbalance())
        << "shards run " << i;
    const double drop_ref = static_cast<double>(ref.dropped);
    EXPECT_NEAR(static_cast<double>(st.dropped), drop_ref, 0.15 * drop_ref)
        << "shards run " << i;
  }
}

// The crash-isolation contract: SIGKILL one shard process mid-run. The
// supervisor must reap the corpse, wind the survivors down via the abort flag,
// merge their *partial* stats, and report the dead shard — never hang on the
// quota-end rendezvous.
TEST(MultiprocCrash, KilledShardIsReportedAndSurvivorsReturnPartialStats) {
  SKIP_UNLESS_MULTIPROC_RUNNABLE();
  constexpr uint64_t kRequests = 400'000;
  MultiprocBackend backend(GoldenBackendConfig(2));
  backend.TestCrashShardAt(/*shard=*/1, /*after_requests=*/10'000);
  const BackendStats st = backend.Run(kRequests);

  EXPECT_EQ(st.failed_shards, 1u);
  // The survivor's full quota is merged; the dead shard contributes nothing.
  EXPECT_GE(st.requests, kRequests / 2);
  EXPECT_LT(st.requests, kRequests);
  EXPECT_GT(st.reads + st.writes, 0u);
}

TEST(MultiprocCrash, CrashDuringReallocateRendezvousDoesNotHang) {
  SKIP_UNLESS_MULTIPROC_RUNNABLE();
  // The dead shard (killed at 10k) never reaches the re-allocation rendezvous
  // at 120k — the survivor would wait for its report forever if the abort flag
  // were not checked inside the rendezvous wait.
  constexpr uint64_t kRequests = 400'000;
  SimBackendConfig bcfg = GoldenBackendConfig(2);
  bcfg.events = FullTimeline();
  MultiprocBackend backend(bcfg);
  backend.TestCrashShardAt(/*shard=*/0, /*after_requests=*/10'000);
  const BackendStats st = backend.Run(kRequests);

  EXPECT_EQ(st.failed_shards, 1u);
  EXPECT_LT(st.requests, kRequests);  // survivor wound down early or finished
}

// The compact-vs-dense leg for this substrate (route_compact_test.cc covers
// the in-process engines): a dense-table multiproc run must reproduce the same
// timeline pins as the compact default — the fallback branch and the stored
// tail entry are bit-identical routes.
TEST(MultiprocGolden, DenseRoutesTimelineRunMatchesCompactPins) {
  SKIP_UNLESS_MULTIPROC_RUNNABLE();
  SimBackendConfig bcfg = GoldenBackendConfig(1);
  bcfg.events = FullTimeline();
  bcfg.dense_routes = true;
  const BackendStats st =
      MakeSimBackend(BackendKind::kMultiproc, bcfg)->Run(200'000);
  EXPECT_EQ(st.reads, 159917u);
  EXPECT_EQ(st.writes, 40083u);
  EXPECT_EQ(st.cache_hits, 59286u);
  EXPECT_EQ(st.spine_hits, 28850u);
  EXPECT_EQ(st.leaf_hits, 30436u);
  EXPECT_EQ(st.server_reads, 98995u);
  EXPECT_EQ(st.dropped, 2148u);
  EXPECT_DOUBLE_EQ(st.hit_ratio(), 0.37072981609209776);
  EXPECT_DOUBLE_EQ(st.CacheImbalance(), 1.285477107402653);
  EXPECT_DOUBLE_EQ(st.ServerImbalance(), 1.7278636677037489);
}

// Memory accounting fields (PR 9): a multiproc run reports its peak RSS, the
// one shared arena, and the per-process sampler; the route tables live in the
// arena, so the per-process route figure is zero by design.
TEST(MultiprocMemory, RunReportsArenaAndRssBytes) {
  SKIP_UNLESS_MULTIPROC_RUNNABLE();
  SimBackendConfig bcfg = GoldenBackendConfig(2);
  bcfg.events = FullTimeline();
  const BackendStats st = MakeSimBackend(BackendKind::kMultiproc, bcfg)->Run(200'000);
  EXPECT_EQ(st.failed_shards, 0u);
  EXPECT_GT(st.peak_rss_bytes, 0u);
  EXPECT_GT(st.arena_bytes, 0u);
  EXPECT_GT(st.sampler_bytes, 0u);
  EXPECT_EQ(st.route_table_bytes, 0u);  // arena-resident, counted in arena_bytes
  EXPECT_EQ(st.respawned_shards, 0u);
}

// ---- respawn ---------------------------------------------------------------

TEST(MultiprocRespawn, KilledShardIsRespawnedAndTheRunCompletes) {
  SKIP_UNLESS_MULTIPROC_RUNNABLE();
  constexpr uint64_t kRequests = 400'000;
  SimBackendConfig bcfg = GoldenBackendConfig(2);
  bcfg.respawn = true;
  MultiprocBackend backend(bcfg);
  backend.TestCrashShardAt(/*shard=*/1, /*after_requests=*/10'000);
  const BackendStats st = backend.Run(kRequests);

  // The second incarnation re-joins from the arena-resident plan, re-runs its
  // quota from the start of its deterministic stream, and the run completes in
  // full: no failed shards, every request accounted for exactly once.
  EXPECT_EQ(st.failed_shards, 0u);
  EXPECT_EQ(st.respawned_shards, 1u);
  EXPECT_EQ(st.requests, kRequests);
  EXPECT_EQ(st.reads + st.writes, kRequests);
}

TEST(MultiprocRespawn, RespawnedControllerShardSurvivesReallocRendezvous) {
  SKIP_UNLESS_MULTIPROC_RUNNABLE();
  // Kill shard 0 — the realloc controller — before the rendezvous at 120k. The
  // respawned incarnation must republish its (idempotent, deterministic)
  // heavy-hitter report, rerun the controller computation, and publish the
  // rebuilt tables; the peer must neither hang nor observe torn state.
  constexpr uint64_t kRequests = 400'000;
  SimBackendConfig bcfg = GoldenBackendConfig(2);
  bcfg.events = FullTimeline();
  bcfg.respawn = true;
  MultiprocBackend backend(bcfg);
  backend.TestCrashShardAt(/*shard=*/0, /*after_requests=*/10'000);
  const BackendStats st = backend.Run(kRequests);

  EXPECT_EQ(st.failed_shards, 0u);
  EXPECT_EQ(st.respawned_shards, 1u);
  EXPECT_EQ(st.requests, kRequests);
}

// ---- stats codec -----------------------------------------------------------

TEST(StatsCodec, RoundTripsARealRunBitForBit) {
  // A real open-loop timeline run populates every field: counters, loads,
  // latency histogram, interval series with per-interval histograms.
  SimBackendConfig bcfg = GoldenBackendConfig(1);
  bcfg.events = FullTimeline();
  bcfg.sample_interval = 40'000;
  bcfg.queue.arrival.rate = 24.0;
  const BackendStats st =
      MakeSimBackend(BackendKind::kSequential, bcfg)->Run(200'000);
  ASSERT_FALSE(st.latency.empty());
  ASSERT_FALSE(st.series.empty());

  const size_t bound = StatsCodecBound(
      st.cache_load.size(),
      st.cache_load.empty() ? 0 : st.cache_load.size() * st.cache_load[0].size(),
      st.server_load.size(), st.series.size());
  std::vector<uint8_t> buf(bound);
  const size_t len = SerializeBackendStats(st, buf.data(), buf.size());
  ASSERT_GT(len, 0u);
  ASSERT_LE(len, bound);

  BackendStats rt;
  ASSERT_TRUE(DeserializeBackendStats(buf.data(), len, &rt));
  EXPECT_EQ(rt.requests, st.requests);
  EXPECT_EQ(rt.reads, st.reads);
  EXPECT_EQ(rt.writes, st.writes);
  EXPECT_EQ(rt.cache_hits, st.cache_hits);
  EXPECT_EQ(rt.spine_hits, st.spine_hits);
  EXPECT_EQ(rt.leaf_hits, st.leaf_hits);
  EXPECT_EQ(rt.server_reads, st.server_reads);
  EXPECT_EQ(rt.dropped, st.dropped);
  EXPECT_EQ(rt.failed_shards, st.failed_shards);
  // Memory fields (PR 9): a real sequential run stamps RSS, table and sampler
  // bytes — they must survive the hand-off too.
  EXPECT_GT(st.peak_rss_bytes, 0u);
  EXPECT_GT(st.route_table_bytes, 0u);
  EXPECT_GT(st.sampler_bytes, 0u);
  EXPECT_EQ(rt.peak_rss_bytes, st.peak_rss_bytes);
  EXPECT_EQ(rt.route_table_bytes, st.route_table_bytes);
  EXPECT_EQ(rt.sampler_bytes, st.sampler_bytes);
  EXPECT_EQ(rt.arena_bytes, st.arena_bytes);
  EXPECT_EQ(rt.respawned_shards, st.respawned_shards);
  EXPECT_EQ(rt.wall_seconds, st.wall_seconds);  // == : bit-exact double
  ASSERT_EQ(rt.cache_load.size(), st.cache_load.size());
  for (size_t l = 0; l < st.cache_load.size(); ++l) {
    ASSERT_EQ(rt.cache_load[l], st.cache_load[l]);  // element bit-exact
  }
  EXPECT_EQ(rt.server_load, st.server_load);
  EXPECT_EQ(rt.latency.counts(), st.latency.counts());
  EXPECT_EQ(rt.latency.total(), st.latency.total());
  EXPECT_EQ(rt.latency.infinite(), st.latency.infinite());
  EXPECT_EQ(rt.latency.finite_sum(), st.latency.finite_sum());
  ASSERT_EQ(rt.series.size(), st.series.size());
  for (size_t i = 0; i < st.series.size(); ++i) {
    EXPECT_EQ(rt.series[i].requests, st.series[i].requests);
    EXPECT_EQ(rt.series[i].delivered, st.series[i].delivered);
    EXPECT_EQ(rt.series[i].dropped, st.series[i].dropped);
    EXPECT_EQ(rt.series[i].reads, st.series[i].reads);
    EXPECT_EQ(rt.series[i].cache_hits, st.series[i].cache_hits);
    EXPECT_EQ(rt.series[i].latency.counts(), st.series[i].latency.counts());
    EXPECT_EQ(rt.series[i].latency.finite_sum(),
              st.series[i].latency.finite_sum());
  }
}

TEST(StatsCodec, RejectsTruncatedBuffersWithoutCrashing) {
  BackendStats st;
  st.requests = 123;
  st.respawned_shards = 2;
  st.arena_bytes = 1u << 20;
  st.cache_load = {{1.0, 2.0}, {3.0}};
  st.server_load = {4.0, 5.0};
  std::vector<uint8_t> buf(StatsCodecBound(2, 3, 2, 0));
  const size_t len = SerializeBackendStats(st, buf.data(), buf.size());
  ASSERT_GT(len, 0u);

  BackendStats out;
  for (size_t cut : {size_t{0}, size_t{1}, size_t{7}, len / 2, len - 1}) {
    EXPECT_FALSE(DeserializeBackendStats(buf.data(), cut, &out))
        << "accepted a " << cut << "-byte truncation of " << len;
    EXPECT_EQ(out.requests, 0u);  // value-initialized on failure
  }
  ASSERT_TRUE(DeserializeBackendStats(buf.data(), len, &out));
  EXPECT_EQ(out.requests, 123u);
  EXPECT_EQ(out.respawned_shards, 2u);
  EXPECT_EQ(out.arena_bytes, 1u << 20);

  // And a too-small serialize target reports 0, never a partial write claim.
  std::vector<uint8_t> tiny(8);
  EXPECT_EQ(SerializeBackendStats(st, tiny.data(), tiny.size()), 0u);
}

}  // namespace
}  // namespace distcache
