#include "sim/event_queue.h"

#include <gtest/gtest.h>

#include <vector>

namespace distcache {
namespace {

TEST(EventQueue, ExecutesInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.Schedule(3.0, [&] { order.push_back(3); });
  q.Schedule(1.0, [&] { order.push_back(1); });
  q.Schedule(2.0, [&] { order.push_back(2); });
  q.RunUntil(10.0);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, SimultaneousEventsAreFifo) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    q.Schedule(1.0, [&order, i] { order.push_back(i); });
  }
  q.RunUntil(2.0);
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, RunUntilStopsAtBoundary) {
  EventQueue q;
  int ran = 0;
  q.Schedule(1.0, [&] { ++ran; });
  q.Schedule(5.0, [&] { ++ran; });
  EXPECT_EQ(q.RunUntil(2.0), 1u);
  EXPECT_EQ(ran, 1);
  EXPECT_DOUBLE_EQ(q.now(), 2.0);
  EXPECT_EQ(q.RunUntil(10.0), 1u);
  EXPECT_EQ(ran, 2);
}

TEST(EventQueue, HandlersCanScheduleMoreEvents) {
  EventQueue q;
  int count = 0;
  std::function<void()> tick = [&] {
    if (++count < 5) {
      q.Schedule(1.0, tick);
    }
  };
  q.Schedule(1.0, tick);
  q.RunUntil(100.0);
  EXPECT_EQ(count, 5);
  EXPECT_DOUBLE_EQ(q.now(), 100.0);
}

TEST(EventQueue, NowAdvancesWithEvents) {
  EventQueue q;
  double seen = -1.0;
  q.Schedule(2.5, [&] { seen = q.now(); });
  q.RunUntil(5.0);
  EXPECT_DOUBLE_EQ(seen, 2.5);
}

TEST(EventQueue, NegativeDelayClampsToNow) {
  EventQueue q;
  bool ran = false;
  q.Schedule(-1.0, [&] { ran = true; });
  q.RunUntil(0.0);
  EXPECT_TRUE(ran);
}

TEST(EventQueue, PendingCount) {
  EventQueue q;
  EXPECT_TRUE(q.empty());
  q.Schedule(1.0, [] {});
  q.Schedule(2.0, [] {});
  EXPECT_EQ(q.pending(), 2u);
}

}  // namespace
}  // namespace distcache
