// Fault-injection and supervisor-hardening tests (runtime/fault_plan.h +
// sim/multiproc_backend.h):
//
//  * every fault class terminates — crash (clean exit / SIGKILL / abort),
//    straggler stall, telemetry drop, control delay, stats corruption and
//    arena-map failure each get a run that must return within the test
//    timeout with the right failed/respawned/degraded accounting;
//  * determinism — two runs with the same seed and the same fault plan
//    produce byte-identical deterministic stats (DeterministicStatsDigest);
//  * controller failover — killing shard 0 before the realloc rendezvous
//    hands the controller role to the next live shard, which publishes a
//    refilled route table: the run completes and the surviving hit ratio
//    stays within 5% of the no-fault run;
//  * repeated respawn — the same shard SIGKILLed twice mid-run and once more
//    at the realloc rendezvous still completes under --respawn with every
//    death counted.
//
// Like the other multiproc tests, everything that forks is skipped under TSan
// and on hosts without a mappable shm arena.
#include <gtest/gtest.h>

#include <cmath>
#include <string>

#include "runtime/fault_plan.h"
#include "sim/multiproc_backend.h"
#include "sim/sim_backend.h"
#include "sim/stats_codec.h"

#if defined(__SANITIZE_THREAD__)
#define DISTCACHE_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define DISTCACHE_TSAN 1
#endif
#endif

namespace distcache {
namespace {

bool MultiprocRunnable() {
#if defined(DISTCACHE_TSAN)
  return false;
#else
  return MultiprocBackend::Supported();
#endif
}

#define SKIP_UNLESS_MULTIPROC_RUNNABLE()                                  \
  do {                                                                    \
    if (!MultiprocRunnable()) {                                           \
      GTEST_SKIP() << "multiproc backend not runnable here (TSan build, " \
                      "non-Linux, or shm arena unavailable)";             \
    }                                                                     \
  } while (0)

constexpr uint64_t kRequests = 200'000;

// Same cluster the multiproc golden tests use: 8 spines, 8 racks, 4
// servers/rack, 1M keys, zipf 0.99, 20% writes, seed 42, batch 64.
SimBackendConfig FaultConfig(uint32_t shards, const std::string& plan_spec) {
  SimBackendConfig bcfg;
  bcfg.cluster.num_spine = 8;
  bcfg.cluster.num_racks = 8;
  bcfg.cluster.servers_per_rack = 4;
  bcfg.cluster.per_switch_objects = 50;
  bcfg.cluster.num_keys = 1'000'000;
  bcfg.cluster.zipf_theta = 0.99;
  bcfg.cluster.write_ratio = 0.2;
  bcfg.cluster.seed = 42;
  bcfg.shards = shards;
  bcfg.batch_size = 64;
  if (!plan_spec.empty()) {
    std::string error;
    EXPECT_TRUE(ParseFaultPlan(plan_spec, shards, kRequests, bcfg.cluster.seed,
                               &bcfg.fault_plan, &error))
        << plan_spec << ": " << error;
  }
  return bcfg;
}

std::vector<ClusterEvent> ReallocTimeline() {
  return {ClusterEvent::ShiftHotspot(90'000, 12'345),
          ClusterEvent::ReallocateCache(120'000)};
}

bool HasRecord(const BackendStats& st, uint32_t kind) {
  for (const BackendStats::FaultRecord& r : st.fault_events) {
    if (r.kind == kind) return true;
  }
  return false;
}

// ---- crash classes ---------------------------------------------------------

TEST(FaultInjection, KillWithoutRespawnDegradesProportionally) {
  SKIP_UNLESS_MULTIPROC_RUNNABLE();
  const BackendStats st =
      MakeSimBackend(BackendKind::kMultiproc, FaultConfig(2, "kill:1@10000"))
          ->Run(kRequests);

  EXPECT_EQ(st.failed_shards, 1u);
  EXPECT_EQ(st.respawned_shards, 0u);
  // Degrade, don't abort: the survivor completes its full half of the quota,
  // and the lost half is charged to degraded_fraction.
  EXPECT_EQ(st.requests, kRequests / 2);
  EXPECT_DOUBLE_EQ(st.degraded_fraction, 0.5);
  EXPECT_TRUE(HasRecord(st, BackendStats::FaultRecord::kShardDeath));
}

TEST(FaultInjection, CleanExitIsDetectedAndRespawned) {
  SKIP_UNLESS_MULTIPROC_RUNNABLE();
  // An injected clean exit(0) leaves the shard slot in kShardRunning, which
  // is how the supervisor tells a premature exit 0 from an orderly one.
  SimBackendConfig bcfg = FaultConfig(2, "exit:1@20000");
  bcfg.respawn = true;
  const BackendStats st =
      MakeSimBackend(BackendKind::kMultiproc, bcfg)->Run(kRequests);

  EXPECT_EQ(st.failed_shards, 0u);
  EXPECT_EQ(st.respawned_shards, 1u);
  EXPECT_EQ(st.requests, kRequests);
  EXPECT_EQ(st.reads + st.writes, kRequests);
  EXPECT_DOUBLE_EQ(st.degraded_fraction, 0.0);
  EXPECT_TRUE(HasRecord(st, BackendStats::FaultRecord::kShardRespawn));
}

TEST(FaultInjection, AbortIsDetectedAndRespawned) {
  SKIP_UNLESS_MULTIPROC_RUNNABLE();
  SimBackendConfig bcfg = FaultConfig(2, "abort:1@20000");
  bcfg.respawn = true;
  const BackendStats st =
      MakeSimBackend(BackendKind::kMultiproc, bcfg)->Run(kRequests);

  EXPECT_EQ(st.failed_shards, 0u);
  EXPECT_EQ(st.respawned_shards, 1u);
  EXPECT_EQ(st.requests, kRequests);
}

// ---- stalls and the heartbeat ladder ---------------------------------------

TEST(FaultInjection, StallTripsHeartbeatWarnButRunCompletes) {
  SKIP_UNLESS_MULTIPROC_RUNNABLE();
  SimBackendConfig bcfg = FaultConfig(2, "stall:1@10000:300");
  bcfg.heartbeat_warn_ms = 50;
  bcfg.heartbeat_dead_ms = 0;  // warn-only: never escalate to SIGKILL
  const BackendStats st =
      MakeSimBackend(BackendKind::kMultiproc, bcfg)->Run(kRequests);

  EXPECT_EQ(st.failed_shards, 0u);
  EXPECT_EQ(st.requests, kRequests);
  EXPECT_GE(st.injected_faults, 1u);
  EXPECT_GE(st.heartbeat_misses, 1u);
  EXPECT_TRUE(HasRecord(st, BackendStats::FaultRecord::kHeartbeatWarn));
}

TEST(FaultInjection, LongStallIsDeclaredDeadAndRespawned) {
  SKIP_UNLESS_MULTIPROC_RUNNABLE();
  // The stall (10s) far exceeds the dead deadline (500ms): the supervisor
  // must SIGKILL the straggler and respawn it instead of waiting it out.
  SimBackendConfig bcfg = FaultConfig(2, "stall:1@10000:10000");
  bcfg.respawn = true;
  bcfg.heartbeat_warn_ms = 100;
  bcfg.heartbeat_dead_ms = 500;
  const BackendStats st =
      MakeSimBackend(BackendKind::kMultiproc, bcfg)->Run(kRequests);

  EXPECT_EQ(st.failed_shards, 0u);
  EXPECT_GE(st.respawned_shards, 1u);
  EXPECT_EQ(st.requests, kRequests);
  EXPECT_TRUE(HasRecord(st, BackendStats::FaultRecord::kShardDeclaredDead));
}

// ---- message-plane faults --------------------------------------------------

TEST(FaultInjection, DroppedTelemetryRunCompletesNearCleanHitRatio) {
  SKIP_UNLESS_MULTIPROC_RUNNABLE();
  const BackendStats clean =
      MakeSimBackend(BackendKind::kMultiproc, FaultConfig(2, ""))
          ->Run(kRequests);
  const BackendStats st =
      MakeSimBackend(BackendKind::kMultiproc, FaultConfig(2, "drop:0@10000:4"))
          ->Run(kRequests);

  EXPECT_EQ(st.failed_shards, 0u);
  EXPECT_EQ(st.requests, kRequests);
  EXPECT_GE(st.injected_faults, 1u);
  // Losing a few telemetry broadcasts shifts load estimates, not hits.
  EXPECT_NEAR(st.hit_ratio(), clean.hit_ratio(), 0.05);
}

TEST(FaultInjection, DelayedControlMessagesRunCompletes) {
  SKIP_UNLESS_MULTIPROC_RUNNABLE();
  SimBackendConfig bcfg = FaultConfig(2, "delay:0@10000:20");
  bcfg.events = ReallocTimeline();
  const BackendStats st =
      MakeSimBackend(BackendKind::kMultiproc, bcfg)->Run(kRequests);

  EXPECT_EQ(st.failed_shards, 0u);
  EXPECT_EQ(st.requests, kRequests);
  EXPECT_GE(st.injected_faults, 1u);
}

// ---- stats integrity -------------------------------------------------------

TEST(FaultInjection, CorruptedStatsBlobIsCaughtByCrc) {
  SKIP_UNLESS_MULTIPROC_RUNNABLE();
  const BackendStats st =
      MakeSimBackend(BackendKind::kMultiproc, FaultConfig(2, "corrupt:1@10000"))
          ->Run(kRequests);

  // The shard itself ran to completion, but its blob fails the CRC check, so
  // the supervisor must treat it as lost rather than merge garbage.
  EXPECT_EQ(st.failed_shards, 1u);
  EXPECT_EQ(st.requests, kRequests / 2);
  EXPECT_DOUBLE_EQ(st.degraded_fraction, 0.5);
  EXPECT_TRUE(HasRecord(st, BackendStats::FaultRecord::kStatsCrcMismatch));
}

TEST(FaultInjection, ArenaMapFailureFailsFastWithoutForking) {
  SKIP_UNLESS_MULTIPROC_RUNNABLE();
  const BackendStats st =
      MakeSimBackend(BackendKind::kMultiproc, FaultConfig(2, "mapfail"))
          ->Run(kRequests);

  EXPECT_EQ(st.requests, 0u);
  EXPECT_EQ(st.failed_shards, 2u);
  EXPECT_DOUBLE_EQ(st.degraded_fraction, 1.0);
  EXPECT_TRUE(HasRecord(st, BackendStats::FaultRecord::kArenaMapFailed));
}

// ---- determinism -----------------------------------------------------------

TEST(FaultInjection, SameSeedSameFaultPlanIsByteIdentical) {
  SKIP_UNLESS_MULTIPROC_RUNNABLE();
  SimBackendConfig bcfg = FaultConfig(2, "random:6");
  bcfg.respawn = true;
  bcfg.events = ReallocTimeline();
  const BackendStats a =
      MakeSimBackend(BackendKind::kMultiproc, bcfg)->Run(kRequests);
  const BackendStats b =
      MakeSimBackend(BackendKind::kMultiproc, bcfg)->Run(kRequests);

  // Spot checks first so a mismatch names the diverging counter...
  EXPECT_EQ(a.requests, b.requests);
  EXPECT_EQ(a.cache_hits, b.cache_hits);
  EXPECT_EQ(a.dropped, b.dropped);
  EXPECT_EQ(a.failed_shards, b.failed_shards);
  EXPECT_EQ(a.respawned_shards, b.respawned_shards);
  // ...then the full deterministic-subset digest.
  EXPECT_EQ(DeterministicStatsDigest(a), DeterministicStatsDigest(b));
}

// ---- controller failover ---------------------------------------------------

TEST(FaultInjection, ControllerDeathFailsOverReallocRendezvous) {
  SKIP_UNLESS_MULTIPROC_RUNNABLE();
  SimBackendConfig clean_cfg = FaultConfig(2, "");
  clean_cfg.events = ReallocTimeline();
  const BackendStats clean =
      MakeSimBackend(BackendKind::kMultiproc, clean_cfg)->Run(kRequests);

  // Shard 0 — the default realloc controller — dies long before the
  // rendezvous at 120k. Shard 1 must claim the controller role, merge the
  // surviving reports, and publish the refilled route table.
  SimBackendConfig bcfg = FaultConfig(2, "kill:0@10000");
  bcfg.events = ReallocTimeline();
  const BackendStats st =
      MakeSimBackend(BackendKind::kMultiproc, bcfg)->Run(kRequests);

  EXPECT_EQ(st.failed_shards, 1u);
  EXPECT_EQ(st.requests, kRequests / 2);
  EXPECT_GE(st.controller_failovers, 1u);
  EXPECT_TRUE(HasRecord(st, BackendStats::FaultRecord::kControllerFailover));
  // The survivor's post-realloc hit ratio tracks the no-fault run: the
  // take-over controller really did refill and publish a usable table.
  EXPECT_NEAR(st.hit_ratio(), clean.hit_ratio(), 0.05);
}

// ---- repeated respawn (same shard, multiple deaths) ------------------------

TEST(FaultInjection, SameShardKilledThriceUnderRespawnStillCompletes) {
  SKIP_UNLESS_MULTIPROC_RUNNABLE();
  // Twice mid-run, once more right at the realloc rendezvous. Each respawned
  // incarnation replays from scratch; the arena-resident one-shot latches
  // keep already-fired faults from firing again.
  SimBackendConfig bcfg =
      FaultConfig(2, "kill:1@20000,kill:1@100000,kill:1@120000");
  bcfg.respawn = true;
  bcfg.events = ReallocTimeline();
  const BackendStats st =
      MakeSimBackend(BackendKind::kMultiproc, bcfg)->Run(kRequests);

  EXPECT_EQ(st.failed_shards, 0u);
  EXPECT_EQ(st.respawned_shards, 3u);
  EXPECT_EQ(st.requests, kRequests);
  EXPECT_EQ(st.reads + st.writes, kRequests);
  EXPECT_DOUBLE_EQ(st.degraded_fraction, 0.0);
}

}  // namespace
}  // namespace distcache
