// Failure-injection and recovery tests for the request-level engines (§4.4 /
// Fig. 11): blackholed-candidate degradation, controller-remap recovery, and
// sequential-vs-sharded / fluid parity under the paper's event series.
#include <gtest/gtest.h>

#include <cmath>

#include "sim/sim_backend.h"

namespace distcache {
namespace {

SimBackendConfig SmallConfig() {
  SimBackendConfig cfg;
  cfg.cluster.mechanism = Mechanism::kDistCache;
  cfg.cluster.num_spine = 8;
  cfg.cluster.num_racks = 8;
  cfg.cluster.servers_per_rack = 4;
  cfg.cluster.per_switch_objects = 50;
  cfg.cluster.num_keys = 1'000'000;
  cfg.cluster.zipf_theta = 0.99;
  cfg.cluster.seed = 7;
  return cfg;
}

constexpr uint64_t kRequests = 400'000;

double RelDiff(double a, double b) {
  return b == 0.0 ? std::abs(a) : std::abs(a - b) / std::abs(b);
}

// The paper's Fig. 11 series scaled onto [0, kRequests): fail spines 0 and 1 at
// 25% / 30%, controller recovery at 55%, switches restored at 80%.
std::vector<ClusterEvent> Fig11Events() {
  return {
      ClusterEvent::FailSpine(kRequests / 4, 0),
      ClusterEvent::FailSpine(kRequests * 3 / 10, 1),
      ClusterEvent::RunRecovery(kRequests * 55 / 100),
      ClusterEvent::RecoverSpine(kRequests * 8 / 10, 0),
      ClusterEvent::RecoverSpine(kRequests * 8 / 10, 1),
  };
}

// A failed spine's candidates degrade to the surviving copy instead of being
// routed (and lost): with the failure injected at request 0, the dead switch
// serves nothing for the whole run while the leaf layer absorbs its share.
TEST(SequentialFailure, RouteToFailedCopyDegradesToSingleChoice) {
  SimBackendConfig cfg = SmallConfig();
  const BackendStats healthy =
      MakeSimBackend(BackendKind::kSequential, cfg)->Run(kRequests);
  ASSERT_GT(healthy.spine_load()[0], 0.0);

  cfg.events = {ClusterEvent::FailSpine(0, 0)};
  const BackendStats failed =
      MakeSimBackend(BackendKind::kSequential, cfg)->Run(kRequests);
  EXPECT_EQ(failed.spine_load()[0], 0.0);  // dead switch never serves a request
  EXPECT_GT(failed.leaf_hits, healthy.leaf_hits);  // pairs degraded to the leaf
  EXPECT_GT(failed.dropped, 0u);  // pre-recovery ECMP transit share blackholes
}

// The Fig. 11 shape, request-level: full delivery while healthy, a dip while the
// dead spines blackhole their transit share, and full recovery once the
// controller remaps — with the hit ratio returning to its healthy level.
TEST(SequentialFailure, HitRatioAndDeliveryRecoverAfterRemap) {
  SimBackendConfig cfg = SmallConfig();
  cfg.sample_interval = kRequests / 10;
  const BackendStats healthy =
      MakeSimBackend(BackendKind::kSequential, cfg)->Run(kRequests);
  ASSERT_EQ(healthy.series.size(), 10u);
  const double healthy_hit = healthy.hit_ratio();

  cfg.events = Fig11Events();
  const BackendStats failed =
      MakeSimBackend(BackendKind::kSequential, cfg)->Run(kRequests);
  ASSERT_EQ(failed.series.size(), 10u);

  // Interval 0-1: healthy. Intervals 3-4: both spines dead, pre-recovery.
  // Intervals 6+: controller has remapped.
  EXPECT_DOUBLE_EQ(failed.series[0].delivered_fraction(), 1.0);
  EXPECT_LT(failed.series[3].delivered_fraction(), 0.9);
  EXPECT_LT(failed.series[3].hit_ratio(), healthy_hit - 0.03);
  for (size_t i = 6; i < 10; ++i) {
    EXPECT_DOUBLE_EQ(failed.series[i].delivered_fraction(), 1.0) << "interval " << i;
    EXPECT_NEAR(failed.series[i].hit_ratio(), healthy_hit, 0.02) << "interval " << i;
  }
}

// An empty timeline must leave the engines bit-identical to their historical
// behaviour: no extra RNG draws, no stat drift.
TEST(Failure, EmptyTimelineIsIdentityForSequential) {
  const SimBackendConfig cfg = SmallConfig();
  SimBackendConfig with_empty = cfg;
  with_empty.events.clear();
  const BackendStats a = MakeSimBackend(BackendKind::kSequential, cfg)->Run(100'000);
  const BackendStats b =
      MakeSimBackend(BackendKind::kSequential, with_empty)->Run(100'000);
  EXPECT_EQ(a.cache_hits, b.cache_hits);
  EXPECT_EQ(a.spine_hits, b.spine_hits);
  EXPECT_EQ(a.server_reads, b.server_reads);
  EXPECT_EQ(a.dropped, 0u);
  EXPECT_EQ(b.dropped, 0u);
}

// Acceptance: sharded vs sequential hit-ratio parity within 1% under the Fig. 11
// event series (the sharded engine applies the multicast timeline at each
// shard's scaled local clock, so aggregate stats must track the reference).
TEST(ShardedFailure, HitRatioParityWithSequentialUnderFig11Series) {
  SimBackendConfig cfg = SmallConfig();
  cfg.events = Fig11Events();
  cfg.sample_interval = kRequests / 10;
  const BackendStats seq =
      MakeSimBackend(BackendKind::kSequential, cfg)->Run(kRequests);
  cfg.shards = 4;
  const BackendStats shard =
      MakeSimBackend(BackendKind::kSharded, cfg)->Run(kRequests);
  EXPECT_LT(RelDiff(shard.hit_ratio(), seq.hit_ratio()), 0.01)
      << "sharded " << shard.hit_ratio() << " vs sequential " << seq.hit_ratio();
  EXPECT_LT(RelDiff(static_cast<double>(shard.dropped),
                    static_cast<double>(seq.dropped)),
            0.05);
}

// Post-recovery engine parity against the fluid model (the bench_fig11 acceptance
// bar): after the controller remap both request-level engines deliver everything,
// matching the fluid model's achieved/offered fraction within 5%.
TEST(Failure, PostRecoveryThroughputMatchesFluidWithin5Percent) {
  SimBackendConfig cfg = SmallConfig();
  cfg.events = Fig11Events();
  cfg.sample_interval = kRequests / 10;
  const BackendStats fluid =
      MakeSimBackend(BackendKind::kFluid, cfg)->Run(kRequests);
  cfg.shards = 4;
  const BackendStats shard =
      MakeSimBackend(BackendKind::kSharded, cfg)->Run(kRequests);
  ASSERT_FALSE(fluid.series.empty());
  ASSERT_FALSE(shard.series.empty());
  const double fluid_final = fluid.series.back().delivered_fraction();
  const double shard_final = shard.series.back().delivered_fraction();
  EXPECT_GT(fluid_final, 0.0);
  EXPECT_LT(RelDiff(shard_final, fluid_final), 0.05);
  // And during the failure window both models show a real dip.
  EXPECT_LT(fluid.series[4].delivered_fraction(), 0.95);
  EXPECT_LT(shard.series[4].delivered_fraction(), 0.95);
}

// Regression: the fluid backend must honour the timeline even with no sampling
// grid (events used to be quantized to interval starts only, so sample_interval
// == 0 — a single interval starting at 0 — silently dropped every event).
TEST(FluidFailure, TimelineAppliesWithoutSampling) {
  SimBackendConfig cfg = SmallConfig();
  cfg.events = {ClusterEvent::FailSpine(kRequests / 4, 0),
                ClusterEvent::FailSpine(kRequests / 4, 1),
                ClusterEvent::RunRecovery(kRequests * 3 / 4)};
  const BackendStats st = MakeSimBackend(BackendKind::kFluid, cfg)->Run(kRequests);
  EXPECT_GT(st.dropped, 0u);  // the failure window's losses must be accounted
  ASSERT_EQ(st.series.size(), 3u);  // segments: healthy / failed / recovered
  EXPECT_DOUBLE_EQ(st.series[0].delivered_fraction(), 1.0);
  EXPECT_LT(st.series[1].delivered_fraction(), 0.95);
  EXPECT_DOUBLE_EQ(st.series[2].delivered_fraction(), 1.0);
}

// CacheReplication under failure: replicated reads spread over the alive spines
// only — no load ever lands on the dead switch after the failure event.
TEST(ShardedFailure, ReplicatedReadsAvoidDeadSpines) {
  SimBackendConfig cfg = SmallConfig();
  cfg.cluster.mechanism = Mechanism::kCacheReplication;
  cfg.events = {ClusterEvent::FailSpine(0, 2)};
  cfg.shards = 2;
  const BackendStats st = MakeSimBackend(BackendKind::kSharded, cfg)->Run(200'000);
  EXPECT_EQ(st.spine_load()[2], 0.0);
  EXPECT_GT(st.cache_hits, 0u);
}

}  // namespace
}  // namespace distcache
