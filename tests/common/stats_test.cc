#include "common/stats.h"

#include <gtest/gtest.h>

namespace distcache {
namespace {

TEST(StreamingStats, EmptyIsZero) {
  StreamingStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.stddev(), 0.0);
}

TEST(StreamingStats, SingleValue) {
  StreamingStats s;
  s.Add(5.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.min(), 5.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(StreamingStats, KnownMoments) {
  StreamingStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) {
    s.Add(x);
  }
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(StreamingStats, CvOfConstantIsZero) {
  StreamingStats s;
  s.Add(3.0);
  s.Add(3.0);
  s.Add(3.0);
  EXPECT_DOUBLE_EQ(s.cv(), 0.0);
}

TEST(Histogram, PercentilesOfUniformRamp) {
  Histogram h(100.0, 100);
  for (int i = 0; i < 100; ++i) {
    h.Add(i + 0.5);
  }
  EXPECT_NEAR(h.Percentile(50), 50.0, 2.0);
  EXPECT_NEAR(h.Percentile(90), 90.0, 2.0);
  EXPECT_NEAR(h.Percentile(0), 0.0, 2.0);
}

TEST(Histogram, OverflowGoesToUpperBound) {
  Histogram h(10.0, 10);
  for (int i = 0; i < 10; ++i) {
    h.Add(1e9);
  }
  EXPECT_DOUBLE_EQ(h.Percentile(50), 10.0);
}

TEST(Histogram, EmptyPercentileIsZero) {
  Histogram h(10.0, 10);
  EXPECT_EQ(h.Percentile(99), 0.0);
}

TEST(Histogram, NegativeClampsToOverflow) {
  Histogram h(10.0, 10);
  h.Add(-1.0);
  EXPECT_EQ(h.total(), 1u);
  EXPECT_DOUBLE_EQ(h.Percentile(50), 10.0);
}

TEST(ImbalanceFactor, BalancedIsOne) {
  EXPECT_DOUBLE_EQ(ImbalanceFactor({3.0, 3.0, 3.0}), 1.0);
}

TEST(ImbalanceFactor, SkewedExceedsOne) {
  EXPECT_DOUBLE_EQ(ImbalanceFactor({0.0, 0.0, 6.0}), 3.0);
}

TEST(ImbalanceFactor, EmptyIsOne) { EXPECT_DOUBLE_EQ(ImbalanceFactor({}), 1.0); }

}  // namespace
}  // namespace distcache
