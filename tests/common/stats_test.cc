#include "common/stats.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "common/random.h"

namespace distcache {
namespace {

TEST(StreamingStats, EmptyIsZero) {
  StreamingStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.stddev(), 0.0);
}

TEST(StreamingStats, SingleValue) {
  StreamingStats s;
  s.Add(5.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.min(), 5.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(StreamingStats, KnownMoments) {
  StreamingStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) {
    s.Add(x);
  }
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(StreamingStats, CvOfConstantIsZero) {
  StreamingStats s;
  s.Add(3.0);
  s.Add(3.0);
  s.Add(3.0);
  EXPECT_DOUBLE_EQ(s.cv(), 0.0);
}

TEST(Histogram, PercentilesOfUniformRamp) {
  Histogram h(100.0, 100);
  for (int i = 0; i < 100; ++i) {
    h.Add(i + 0.5);
  }
  EXPECT_NEAR(h.Percentile(50), 50.0, 2.0);
  EXPECT_NEAR(h.Percentile(90), 90.0, 2.0);
  EXPECT_NEAR(h.Percentile(0), 0.0, 2.0);
}

TEST(Histogram, OverflowGoesToUpperBound) {
  Histogram h(10.0, 10);
  for (int i = 0; i < 10; ++i) {
    h.Add(1e9);
  }
  EXPECT_DOUBLE_EQ(h.Percentile(50), 10.0);
}

TEST(Histogram, EmptyPercentileIsZero) {
  Histogram h(10.0, 10);
  EXPECT_EQ(h.Percentile(99), 0.0);
}

TEST(Histogram, NegativeClampsToOverflow) {
  Histogram h(10.0, 10);
  h.Add(-1.0);
  EXPECT_EQ(h.total(), 1u);
  EXPECT_DOUBLE_EQ(h.Percentile(50), 10.0);
}

TEST(ImbalanceFactor, BalancedIsOne) {
  EXPECT_DOUBLE_EQ(ImbalanceFactor({3.0, 3.0, 3.0}), 1.0);
}

TEST(ImbalanceFactor, SkewedExceedsOne) {
  EXPECT_DOUBLE_EQ(ImbalanceFactor({0.0, 0.0, 6.0}), 3.0);
}

TEST(ImbalanceFactor, EmptyIsOne) { EXPECT_DOUBLE_EQ(ImbalanceFactor({}), 1.0); }

// Bucket edges grow by 2^(1/16) ≈ 4.4%, so a bucket midpoint can be off the
// true order statistic by at most half a bucket on each side: 5% relative
// tolerance covers it with margin.
void ExpectWithinBucketResolution(double got, double want) {
  EXPECT_NEAR(got, want, 0.05 * want + 1e-9);
}

TEST(LatencyHistogram, PercentileTracksSortedSamples) {
  Rng rng(7);
  LatencyHistogram h;
  std::vector<double> samples;
  for (int i = 0; i < 20000; ++i) {
    const double v = 0.4 + rng.NextExponential(0.5);
    samples.push_back(v);
    h.Add(v);
  }
  std::sort(samples.begin(), samples.end());
  for (double p : {50.0, 95.0, 99.0, 99.9}) {
    const auto rank = static_cast<size_t>(p / 100.0 *
                                          static_cast<double>(samples.size() - 1));
    ExpectWithinBucketResolution(h.Percentile(p), samples[rank]);
  }
  EXPECT_EQ(h.total(), 20000u);
  double sum = 0.0;
  for (double v : samples) {
    sum += v;
  }
  EXPECT_NEAR(h.mean(), sum / 20000.0, 1e-9);
}

TEST(LatencyHistogram, MergeIsAssociativeAndBucketExact) {
  Rng rng(11);
  LatencyHistogram parts[3];
  LatencyHistogram all;
  for (int part = 0; part < 3; ++part) {
    for (int i = 0; i < 1000 * (part + 1); ++i) {
      const double v = rng.NextExponential(0.1 * (part + 1));
      parts[part].Add(v);
      all.Add(v);
    }
  }
  parts[2].AddInfinite(5);
  all.AddInfinite(5);
  // (a ⊕ b) ⊕ c vs a ⊕ (b ⊕ c): bucket-for-bucket equality, not just summary
  // agreement — the property the sharded engine's quota-end merge relies on.
  LatencyHistogram left = parts[0];
  left.Merge(parts[1]);
  left.Merge(parts[2]);
  LatencyHistogram right_tail = parts[1];
  right_tail.Merge(parts[2]);
  LatencyHistogram right = parts[0];
  right.Merge(right_tail);
  EXPECT_EQ(left.counts(), right.counts());
  EXPECT_EQ(left.total(), right.total());
  EXPECT_EQ(left.infinite(), right.infinite());
  // And both equal the histogram built from the concatenated stream.
  EXPECT_EQ(left.counts(), all.counts());
  EXPECT_EQ(left.total(), all.total());
  EXPECT_EQ(left.infinite(), all.infinite());
  EXPECT_NEAR(left.mean(), all.mean(), 1e-9);
}

TEST(LatencyHistogram, MergeWithEmptyIsIdentity) {
  LatencyHistogram h;
  h.Add(1.5, 10);
  const std::vector<uint64_t> before = h.counts();
  LatencyHistogram empty;
  h.Merge(empty);
  EXPECT_EQ(h.counts(), before);
  EXPECT_EQ(h.total(), 10u);
  LatencyHistogram other;
  other.Merge(h);
  EXPECT_EQ(other.counts(), before);
}

TEST(LatencyHistogram, DeltaSinceIsTheIntervalSlice) {
  Rng rng(13);
  LatencyHistogram h;
  for (int i = 0; i < 500; ++i) {
    h.Add(rng.NextExponential(1.0));
  }
  const LatencyHistogram mark = h;
  for (int i = 0; i < 300; ++i) {
    h.Add(10.0 + rng.NextExponential(1.0));
  }
  h.AddInfinite(2);
  const LatencyHistogram delta = h.DeltaSince(mark);
  EXPECT_EQ(delta.total(), 302u);
  EXPECT_EQ(delta.infinite(), 2u);
  // Slice ⊕ mark reassembles the cumulative histogram bucket-for-bucket.
  LatencyHistogram rebuilt = mark;
  rebuilt.Merge(delta);
  EXPECT_EQ(rebuilt.counts(), h.counts());
  EXPECT_EQ(rebuilt.total(), h.total());
  // The interval's own median reflects only the second batch.
  EXPECT_GT(delta.Percentile(50.0), 9.0);
}

TEST(LatencyHistogram, InfiniteMassDrivesTailPercentiles) {
  LatencyHistogram h;
  h.Add(1.0, 98);
  h.AddInfinite(2);
  EXPECT_EQ(h.total(), 100u);
  EXPECT_DOUBLE_EQ(h.infinite_fraction(), 0.02);
  EXPECT_TRUE(std::isfinite(h.Percentile(50.0)));
  EXPECT_TRUE(std::isinf(h.Percentile(99.9)));
  // Mean covers the finite mass only.
  EXPECT_NEAR(h.mean(), 1.0, 0.05);
}

TEST(LatencyHistogram, EmptyBehaves) {
  LatencyHistogram h;
  EXPECT_TRUE(h.empty());
  EXPECT_EQ(h.Percentile(99.0), 0.0);
  const LatencyHistogram delta = h.DeltaSince(h);
  EXPECT_TRUE(delta.empty());
}

}  // namespace
}  // namespace distcache
