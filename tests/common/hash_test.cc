#include "common/hash.h"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace distcache {
namespace {

TEST(Mix64, Deterministic) {
  EXPECT_EQ(Mix64(42), Mix64(42));
  EXPECT_NE(Mix64(42), Mix64(43));
}

TEST(Mix64, ZeroIsNotFixedPoint) { EXPECT_NE(Mix64(0), 0u); }

TEST(Mix64, AvalancheFlipsManyBits) {
  // Flipping one input bit should flip roughly half the output bits.
  int total = 0;
  for (uint64_t x = 1; x <= 64; ++x) {
    const uint64_t a = Mix64(x);
    const uint64_t b = Mix64(x ^ 1);
    total += std::popcount(a ^ b);
  }
  const double avg = total / 64.0;
  EXPECT_GT(avg, 24.0);
  EXPECT_LT(avg, 40.0);
}

TEST(Mix64, BucketsAreBalanced) {
  constexpr int kBuckets = 16;
  constexpr int kSamples = 16000;
  std::vector<int> counts(kBuckets, 0);
  for (uint64_t x = 0; x < kSamples; ++x) {
    ++counts[Mix64(x) % kBuckets];
  }
  for (int c : counts) {
    EXPECT_GT(c, kSamples / kBuckets / 2);
    EXPECT_LT(c, kSamples / kBuckets * 2);
  }
}

TEST(HashCombine, OrderSensitive) {
  EXPECT_NE(HashCombine(1, 2), HashCombine(2, 1));
}

TEST(HashBytes, DeterministicAndSeedSensitive) {
  const char data[] = "distcache";
  EXPECT_EQ(HashBytes(data, sizeof(data)), HashBytes(data, sizeof(data)));
  EXPECT_NE(HashBytes(data, sizeof(data), 1), HashBytes(data, sizeof(data), 2));
}

TEST(HashBytes, LengthSensitive) {
  const char data[] = "distcache";
  EXPECT_NE(HashBytes(data, 4), HashBytes(data, 5));
}

TEST(TabulationHash, Deterministic) {
  TabulationHash h(7);
  EXPECT_EQ(h(123456), h(123456));
}

TEST(TabulationHash, SeedChangesFunction) {
  TabulationHash h1(1);
  TabulationHash h2(2);
  int differing = 0;
  for (uint64_t k = 0; k < 100; ++k) {
    differing += h1(k) != h2(k) ? 1 : 0;
  }
  EXPECT_EQ(differing, 100);
}

TEST(TabulationHash, FewCollisionsOnSequentialKeys) {
  TabulationHash h(3);
  std::set<uint64_t> values;
  for (uint64_t k = 0; k < 10000; ++k) {
    values.insert(h(k));
  }
  EXPECT_EQ(values.size(), 10000u);  // 64-bit collisions over 10k keys ~ impossible
}

TEST(TabulationHash, BucketsAreBalanced) {
  TabulationHash h(11);
  constexpr int kBuckets = 32;
  std::vector<int> counts(kBuckets, 0);
  for (uint64_t k = 0; k < 32000; ++k) {
    ++counts[h(k) % kBuckets];
  }
  for (int c : counts) {
    EXPECT_GT(c, 500);
    EXPECT_LT(c, 1500);
  }
}

// The property DistCache's analysis needs: the two layer hashes must be independent,
// i.e., knowing h0's bucket must not help predict h1's bucket.
TEST(HashFamily, LayerFunctionsAreIndependent) {
  HashFamily family(2, 99);
  constexpr size_t kBuckets = 8;
  // Joint histogram of (h0 bucket, h1 bucket) should be ~uniform over 64 cells.
  std::vector<int> joint(kBuckets * kBuckets, 0);
  constexpr int kKeys = 64000;
  for (uint64_t k = 0; k < kKeys; ++k) {
    ++joint[family.Bucket(0, k, kBuckets) * kBuckets + family.Bucket(1, k, kBuckets)];
  }
  const double expected = static_cast<double>(kKeys) / (kBuckets * kBuckets);
  double chi2 = 0.0;
  for (int c : joint) {
    const double d = c - expected;
    chi2 += d * d / expected;
  }
  // 63 degrees of freedom; 99.9th percentile ≈ 103. Allow generous slack.
  EXPECT_LT(chi2, 150.0);
}

TEST(HashFamily, SizeAndDistinctness) {
  HashFamily family(3, 5);
  EXPECT_EQ(family.size(), 3u);
  EXPECT_NE(family.Hash(0, 42), family.Hash(1, 42));
  EXPECT_NE(family.Hash(1, 42), family.Hash(2, 42));
}

TEST(HashFamily, SameSeedSameFamily) {
  HashFamily a(2, 123);
  HashFamily b(2, 123);
  for (uint64_t k = 0; k < 50; ++k) {
    EXPECT_EQ(a.Hash(0, k), b.Hash(0, k));
    EXPECT_EQ(a.Hash(1, k), b.Hash(1, k));
  }
}

}  // namespace
}  // namespace distcache
