#include <gtest/gtest.h>

#include "common/random.h"
#include "common/zipf.h"

namespace distcache {
namespace {

TEST(DiscreteDistribution, NormalizesPmf) {
  DiscreteDistribution d({2.0, 2.0, 4.0});
  EXPECT_DOUBLE_EQ(d.Pmf(0), 0.25);
  EXPECT_DOUBLE_EQ(d.Pmf(2), 0.5);
  EXPECT_DOUBLE_EQ(d.Pmf(3), 0.0);
  EXPECT_EQ(d.num_keys(), 3u);
}

TEST(DiscreteDistribution, TopMassIsCdf) {
  DiscreteDistribution d({1.0, 1.0, 2.0});
  EXPECT_DOUBLE_EQ(d.TopMass(0), 0.0);
  EXPECT_DOUBLE_EQ(d.TopMass(1), 0.25);
  EXPECT_DOUBLE_EQ(d.TopMass(2), 0.5);
  EXPECT_DOUBLE_EQ(d.TopMass(3), 1.0);
  EXPECT_DOUBLE_EQ(d.TopMass(99), 1.0);
}

TEST(DiscreteDistribution, SamplesFollowPmf) {
  DiscreteDistribution d({0.7, 0.2, 0.1});
  Rng rng(5);
  int counts[3] = {};
  constexpr int kSamples = 100000;
  for (int i = 0; i < kSamples; ++i) {
    ++counts[d.Sample(rng)];
  }
  EXPECT_NEAR(counts[0] / static_cast<double>(kSamples), 0.7, 0.02);
  EXPECT_NEAR(counts[1] / static_cast<double>(kSamples), 0.2, 0.02);
  EXPECT_NEAR(counts[2] / static_cast<double>(kSamples), 0.1, 0.02);
}

TEST(DiscreteDistribution, ZeroMassKeysNeverSampled) {
  DiscreteDistribution d({1.0, 0.0, 1.0});
  Rng rng(6);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_NE(d.Sample(rng), 1u);
  }
}

TEST(DiscreteDistribution, AllZeroPmfFallsBackToUniform) {
  // Regression: the all-zero pmf used to keep pmf_ at zero while the cdf rounding
  // guard set cdf_.back() = 1.0 — dumping 100% of the sampled mass on the last key.
  DiscreteDistribution d({0.0, 0.0, 0.0, 0.0});
  for (uint64_t k = 0; k < 4; ++k) {
    EXPECT_DOUBLE_EQ(d.Pmf(k), 0.25);
  }
  Rng rng(17);
  int counts[4] = {};
  constexpr int kSamples = 40000;
  for (int i = 0; i < kSamples; ++i) {
    const uint64_t key = d.Sample(rng);
    ASSERT_LT(key, 4u);
    ++counts[key];
  }
  for (int c : counts) {
    EXPECT_NEAR(c / static_cast<double>(kSamples), 0.25, 0.02);
  }
}

TEST(CappedZipfPmf, RespectsCap) {
  const auto pmf = CappedZipfPmf(100, 0.99, 0.02);
  double sum = 0.0;
  for (double p : pmf) {
    EXPECT_LE(p, 0.02 * (1.0 + 1e-9));
    sum += p;
  }
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(CappedZipfPmf, UnbindingCapReturnsZipf) {
  const auto pmf = CappedZipfPmf(100, 0.9, 1.0);
  ZipfDistribution zipf(100, 0.9);
  for (uint64_t i = 0; i < 100; ++i) {
    EXPECT_NEAR(pmf[i], zipf.Pmf(i), 1e-12);
  }
}

TEST(CappedZipfPmf, ClippedMassGoesToTail) {
  const auto raw = CappedZipfPmf(1000, 0.99, 1.0);
  const auto capped = CappedZipfPmf(1000, 0.99, 0.005);
  EXPECT_LT(capped[0], raw[0]);
  EXPECT_GT(capped[999], raw[999]);  // tail inflated by renormalization
}

TEST(CappedZipfPmf, HeadIsFlatAtCap) {
  const auto pmf = CappedZipfPmf(1000, 0.99, 0.01);
  // The hottest keys all sit exactly at the cap.
  EXPECT_NEAR(pmf[0], 0.01, 1e-9);
  EXPECT_NEAR(pmf[1], 0.01, 1e-9);
  EXPECT_LT(pmf[999], 0.01);
}

TEST(CappedZipfPmf, InfeasibleCapReturnsUniform) {
  // cap < 1/num_keys is unsatisfiable (a pmf over n keys cannot be everywhere
  // below 1/n); the clip-and-renormalize loop used to run its 64 rounds and
  // silently return a cap-violating pmf. The closest satisfiable pmf is uniform.
  const auto pmf = CappedZipfPmf(100, 0.99, 0.001);
  double sum = 0.0;
  for (double p : pmf) {
    EXPECT_DOUBLE_EQ(p, 0.01);
    sum += p;
  }
  EXPECT_NEAR(sum, 1.0, 1e-9);
  // The boundary cap == 1/n is exactly feasible, and only by the uniform pmf.
  const auto boundary = CappedZipfPmf(100, 0.99, 0.01);
  for (double p : boundary) {
    EXPECT_DOUBLE_EQ(p, 0.01);
  }
}

}  // namespace
}  // namespace distcache
