#include "common/ycsb.h"

#include <gtest/gtest.h>

namespace distcache {
namespace {

YcsbGenerator::Config Cfg(YcsbWorkload w) {
  YcsbGenerator::Config cfg;
  cfg.workload = w;
  cfg.num_keys = 10000;
  return cfg;
}

TEST(YcsbMix, ProportionsSumToOne) {
  for (YcsbWorkload w : {YcsbWorkload::kA, YcsbWorkload::kB, YcsbWorkload::kC,
                         YcsbWorkload::kD, YcsbWorkload::kF}) {
    const YcsbMix mix = MixFor(w);
    EXPECT_NEAR(mix.reads + mix.updates + mix.inserts + mix.read_modify_writes, 1.0,
                1e-12)
        << YcsbWorkloadName(w);
  }
}

TEST(YcsbMix, EffectiveWriteRatios) {
  EXPECT_DOUBLE_EQ(EffectiveWriteRatio(YcsbWorkload::kA), 0.5);
  EXPECT_DOUBLE_EQ(EffectiveWriteRatio(YcsbWorkload::kB), 0.05);
  EXPECT_DOUBLE_EQ(EffectiveWriteRatio(YcsbWorkload::kC), 0.0);
  EXPECT_DOUBLE_EQ(EffectiveWriteRatio(YcsbWorkload::kD), 0.05);
  EXPECT_DOUBLE_EQ(EffectiveWriteRatio(YcsbWorkload::kF), 0.25);
}

TEST(YcsbGenerator, WorkloadCIsReadOnly) {
  YcsbGenerator gen(Cfg(YcsbWorkload::kC));
  for (int i = 0; i < 2000; ++i) {
    EXPECT_EQ(gen.Next().type, OpType::kGet);
  }
}

TEST(YcsbGenerator, WorkloadAMixesEvenly) {
  YcsbGenerator gen(Cfg(YcsbWorkload::kA));
  int writes = 0;
  constexpr int kOps = 50000;
  for (int i = 0; i < kOps; ++i) {
    writes += gen.Next().type == OpType::kPut ? 1 : 0;
  }
  EXPECT_NEAR(writes / static_cast<double>(kOps), 0.5, 0.02);
}

TEST(YcsbGenerator, RmwEmitsGetThenPutOnSameKey) {
  YcsbGenerator gen(Cfg(YcsbWorkload::kF));
  int rmw_pairs = 0;
  Op prev = gen.Next();
  for (int i = 0; i < 20000; ++i) {
    const Op cur = gen.Next();
    if (prev.type == OpType::kGet && cur.type == OpType::kPut) {
      EXPECT_EQ(prev.key, cur.key);
      ++rmw_pairs;
    }
    prev = cur;
  }
  EXPECT_GT(rmw_pairs, 2000);
}

TEST(YcsbGenerator, InsertsGrowTheKeyspaceWithFreshKeys) {
  YcsbGenerator gen(Cfg(YcsbWorkload::kD));
  const uint64_t initial = gen.live_keys();
  uint64_t last_insert = 0;
  int inserts = 0;
  for (int i = 0; i < 20000; ++i) {
    const Op op = gen.Next();
    if (op.type == OpType::kPut) {
      EXPECT_GE(op.key, initial);  // D writes are inserts of brand-new keys
      EXPECT_GT(op.key + 1, last_insert);
      last_insert = op.key + 1;
      ++inserts;
    }
  }
  EXPECT_EQ(gen.live_keys(), initial + inserts);
  EXPECT_NEAR(inserts / 20000.0, 0.05, 0.01);
}

TEST(YcsbGenerator, LatestDistributionFavorsRecentKeys) {
  YcsbGenerator gen(Cfg(YcsbWorkload::kD));
  uint64_t recent_reads = 0;
  uint64_t reads = 0;
  for (int i = 0; i < 20000; ++i) {
    const Op op = gen.Next();
    if (op.type == OpType::kGet) {
      ++reads;
      if (op.key + 100 >= gen.live_keys()) {
        ++recent_reads;  // among the 100 newest keys
      }
    }
  }
  // Zipf-0.99 over 10k ranks: the top-100 ranks carry ~half the mass.
  EXPECT_GT(static_cast<double>(recent_reads) / static_cast<double>(reads), 0.3);
}

TEST(YcsbGenerator, KeysStayInLiveRange) {
  for (YcsbWorkload w : {YcsbWorkload::kA, YcsbWorkload::kD, YcsbWorkload::kF}) {
    YcsbGenerator gen(Cfg(w));
    for (int i = 0; i < 5000; ++i) {
      const Op op = gen.Next();  // evaluate before reading live_keys()
      EXPECT_LT(op.key, gen.live_keys()) << YcsbWorkloadName(w);
    }
  }
}

}  // namespace
}  // namespace distcache
