#include "common/zipf.h"

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>
#include <vector>

#include "common/random.h"

namespace distcache {
namespace {

TEST(Zeta, MatchesExactSmallN) {
  for (double theta : {0.5, 0.9, 0.99}) {
    double exact = 0.0;
    for (int i = 1; i <= 500; ++i) {
      exact += std::pow(i, -theta);
    }
    EXPECT_NEAR(ZipfDistribution::Zeta(500, theta), exact, 1e-9) << "theta=" << theta;
  }
}

TEST(Zeta, IntegralTailIsAccurate) {
  // Compare prefix+integral (used for n > 10000) against a brute-force sum.
  const double theta = 0.9;
  const uint64_t n = 200000;
  double exact = 0.0;
  for (uint64_t i = 1; i <= n; ++i) {
    exact += std::pow(static_cast<double>(i), -theta);
  }
  EXPECT_NEAR(ZipfDistribution::Zeta(n, theta) / exact, 1.0, 1e-5);
}

TEST(ZipfDistribution, PmfIsNormalized) {
  ZipfDistribution dist(10000, 0.95);
  double sum = 0.0;
  for (uint64_t k = 0; k < 10000; ++k) {
    sum += dist.Pmf(k);
  }
  EXPECT_NEAR(sum, 1.0, 1e-6);
}

TEST(ZipfDistribution, PmfIsDecreasing) {
  ZipfDistribution dist(1000, 0.9);
  for (uint64_t k = 1; k < 1000; ++k) {
    EXPECT_LT(dist.Pmf(k), dist.Pmf(k - 1));
  }
}

TEST(ZipfDistribution, PmfOutOfRangeIsZero) {
  ZipfDistribution dist(100, 0.9);
  EXPECT_EQ(dist.Pmf(100), 0.0);
  EXPECT_EQ(dist.Pmf(1000000), 0.0);
}

TEST(ZipfDistribution, TopMassMonotone) {
  ZipfDistribution dist(100000, 0.99);
  double prev = 0.0;
  for (uint64_t k : {1, 10, 100, 1000, 10000, 100000}) {
    const double mass = dist.TopMass(k);
    EXPECT_GT(mass, prev);
    prev = mass;
  }
  EXPECT_NEAR(dist.TopMass(100000), 1.0, 1e-9);
  EXPECT_NEAR(dist.TopMass(1000000), 1.0, 1e-12);  // clamped beyond num_keys
}

TEST(ZipfDistribution, PaperHeadlineSkew) {
  // §2.1 cites measurements where 60-90% of queries go to the hottest 10% of objects;
  // zipf-0.99 over 100M keys concentrates ~4.9% of all queries on the single hottest.
  ZipfDistribution dist(100'000'000, 0.99);
  EXPECT_NEAR(dist.Pmf(0), 0.0495, 0.002);
  EXPECT_GT(dist.TopMass(10'000'000), 0.6);
}

TEST(UniformDistribution, Basics) {
  UniformDistribution dist(1000);
  EXPECT_DOUBLE_EQ(dist.Pmf(0), 0.001);
  EXPECT_DOUBLE_EQ(dist.Pmf(999), 0.001);
  EXPECT_DOUBLE_EQ(dist.Pmf(1000), 0.0);
  EXPECT_DOUBLE_EQ(dist.TopMass(500), 0.5);
  EXPECT_EQ(dist.name(), "uniform");
}

TEST(MakeDistribution, FactorySelectsByTheta) {
  EXPECT_EQ(MakeDistribution(10, 0.0)->name(), "uniform");
  EXPECT_EQ(MakeDistribution(10, 0.99)->name(), "zipf-0.99");
  EXPECT_EQ(MakeDistribution(10, 0.9)->name(), "zipf-0.90");
}

// Property sweep: for each skew, empirical frequencies from Sample() must track the
// analytic Pmf() on the hottest ranks (this validates the Gray et al. approximation).
class ZipfSamplingTest : public ::testing::TestWithParam<double> {};

TEST_P(ZipfSamplingTest, EmpiricalMatchesPmf) {
  const double theta = GetParam();
  const uint64_t kKeys = 100000;
  ZipfDistribution dist(kKeys, theta);
  Rng rng(1234);
  constexpr int kSamples = 200000;
  std::vector<int> counts(64, 0);
  for (int i = 0; i < kSamples; ++i) {
    const uint64_t key = dist.Sample(rng);
    ASSERT_LT(key, kKeys);
    if (key < counts.size()) {
      ++counts[key];
    }
  }
  for (uint64_t k : {0, 1, 2, 7, 31}) {
    const double expected = dist.Pmf(k) * kSamples;
    if (expected < 50) {
      continue;  // too rare for a tight bound
    }
    EXPECT_NEAR(counts[k] / expected, 1.0, 0.25)
        << "theta=" << theta << " rank=" << k;
  }
}

TEST_P(ZipfSamplingTest, SamplesWithinRange) {
  const double theta = GetParam();
  ZipfDistribution dist(5000, theta);
  Rng rng(99);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(dist.Sample(rng), 5000u);
  }
}

// theta = 1.0 exercises the logarithmic limits of the closed forms: the integral
// tail and alpha = 1/(1-theta) would otherwise divide by zero (inf/NaN ranks).
INSTANTIATE_TEST_SUITE_P(Skews, ZipfSamplingTest,
                         ::testing::Values(0.5, 0.9, 0.95, 0.99, 1.0));

TEST(ZipfDistribution, ThetaOneIsFiniteAndNormalized) {
  ZipfDistribution dist(100000, 1.0);
  // Zeta via the log-tail form must match a brute-force harmonic sum.
  double exact = 0.0;
  for (uint64_t i = 1; i <= 100000; ++i) {
    exact += 1.0 / static_cast<double>(i);
  }
  EXPECT_NEAR(ZipfDistribution::Zeta(100000, 1.0) / exact, 1.0, 1e-5);
  double sum = 0.0;
  for (uint64_t k = 0; k < 100000; ++k) {
    const double p = dist.Pmf(k);
    ASSERT_TRUE(std::isfinite(p));
    sum += p;
  }
  EXPECT_NEAR(sum, 1.0, 1e-6);
  // Sampling must stay finite and in range (the θ=1.0 class of bug produced
  // inf/NaN ranks that cast to out-of-range keys).
  Rng rng(7);
  for (int i = 0; i < 50000; ++i) {
    EXPECT_LT(dist.Sample(rng), 100000u);
  }
}

}  // namespace
}  // namespace distcache
