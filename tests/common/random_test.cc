#include "common/random.h"

#include <gtest/gtest.h>

#include <cmath>

namespace distcache {
namespace {

TEST(Rng, DeterministicFromSeed) {
  Rng a(7);
  Rng b(7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    same += a.Next() == b.Next() ? 1 : 0;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, BoundedStaysInRange) {
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.NextBounded(17), 17u);
  }
}

TEST(Rng, BoundedIsRoughlyUniform) {
  Rng rng(4);
  int counts[10] = {};
  constexpr int kSamples = 100000;
  for (int i = 0; i < kSamples; ++i) {
    ++counts[rng.NextBounded(10)];
  }
  for (int c : counts) {
    EXPECT_NEAR(c, kSamples / 10, kSamples / 50);
  }
}

TEST(Rng, DoubleInUnitInterval) {
  Rng rng(5);
  double sum = 0.0;
  for (int i = 0; i < 100000; ++i) {
    const double x = rng.NextDouble();
    ASSERT_GE(x, 0.0);
    ASSERT_LT(x, 1.0);
    sum += x;
  }
  EXPECT_NEAR(sum / 100000, 0.5, 0.01);
}

TEST(Rng, ExponentialHasCorrectMean) {
  Rng rng(6);
  for (double rate : {0.5, 1.0, 4.0}) {
    double sum = 0.0;
    constexpr int kSamples = 200000;
    for (int i = 0; i < kSamples; ++i) {
      sum += rng.NextExponential(rate);
    }
    EXPECT_NEAR(sum / kSamples, 1.0 / rate, 0.05 / rate) << "rate=" << rate;
  }
}

TEST(Rng, ExponentialIsPositive) {
  Rng rng(8);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_GT(rng.NextExponential(2.0), 0.0);
  }
}

TEST(Rng, BernoulliTracksProbability) {
  Rng rng(9);
  for (double p : {0.1, 0.5, 0.9}) {
    int hits = 0;
    constexpr int kSamples = 100000;
    for (int i = 0; i < kSamples; ++i) {
      hits += rng.NextBernoulli(p) ? 1 : 0;
    }
    EXPECT_NEAR(static_cast<double>(hits) / kSamples, p, 0.01);
  }
}

TEST(Rng, ReseedResetsSequence) {
  Rng rng(10);
  const uint64_t first = rng.Next();
  rng.Next();
  rng.Seed(10);
  EXPECT_EQ(rng.Next(), first);
}

}  // namespace
}  // namespace distcache
