#include "common/status.h"

#include <gtest/gtest.h>

namespace distcache {
namespace {

TEST(Status, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
}

TEST(Status, FactoriesCarryCode) {
  EXPECT_EQ(Status::NotFound().code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::AlreadyExists().code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::InvalidArgument().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::ResourceExhausted().code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(Status::Unavailable().code(), StatusCode::kUnavailable);
  EXPECT_EQ(Status::FailedPrecondition().code(), StatusCode::kFailedPrecondition);
}

TEST(Status, ToStringIncludesMessage) {
  EXPECT_EQ(Status::NotFound("key 7").ToString(), "NOT_FOUND: key 7");
  EXPECT_EQ(Status().ToString(), "OK");
}

TEST(Status, EqualityComparesCodeOnly) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("b"));
}

TEST(StatusOr, HoldsValue) {
  StatusOr<int> v(42);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v.value(), 42);
  EXPECT_EQ(*v, 42);
  EXPECT_TRUE(v.status().ok());
}

TEST(StatusOr, HoldsError) {
  StatusOr<int> v(Status::NotFound("gone"));
  EXPECT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kNotFound);
}

TEST(StatusOr, MoveOutValue) {
  StatusOr<std::string> v(std::string("payload"));
  const std::string s = std::move(v).value();
  EXPECT_EQ(s, "payload");
}

TEST(StatusOr, ArrowOperator) {
  StatusOr<std::string> v(std::string("abc"));
  EXPECT_EQ(v->size(), 3u);
}

TEST(StatusCodeName, AllNamesDistinct) {
  EXPECT_STREQ(StatusCodeName(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeName(StatusCode::kUnavailable), "UNAVAILABLE");
}

}  // namespace
}  // namespace distcache
