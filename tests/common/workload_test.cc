#include "common/workload.h"

#include <gtest/gtest.h>

namespace distcache {
namespace {

TEST(WorkloadGenerator, ReadOnlyProducesNoWrites) {
  WorkloadConfig cfg;
  cfg.num_keys = 1000;
  cfg.write_ratio = 0.0;
  WorkloadGenerator gen(cfg);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(gen.Next().type, OpType::kGet);
  }
}

TEST(WorkloadGenerator, WriteOnlyProducesAllWrites) {
  WorkloadConfig cfg;
  cfg.num_keys = 1000;
  cfg.write_ratio = 1.0;
  WorkloadGenerator gen(cfg);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(gen.Next().type, OpType::kPut);
  }
}

TEST(WorkloadGenerator, WriteRatioIsRespected) {
  WorkloadConfig cfg;
  cfg.num_keys = 1000;
  cfg.write_ratio = 0.3;
  WorkloadGenerator gen(cfg);
  int writes = 0;
  constexpr int kOps = 50000;
  for (int i = 0; i < kOps; ++i) {
    writes += gen.Next().type == OpType::kPut ? 1 : 0;
  }
  EXPECT_NEAR(static_cast<double>(writes) / kOps, 0.3, 0.02);
}

TEST(WorkloadGenerator, KeysInRange) {
  WorkloadConfig cfg;
  cfg.num_keys = 500;
  cfg.zipf_theta = 0.99;
  WorkloadGenerator gen(cfg);
  for (int i = 0; i < 5000; ++i) {
    EXPECT_LT(gen.Next().key, 500u);
  }
}

TEST(WorkloadGenerator, DeterministicFromSeed) {
  WorkloadConfig cfg;
  cfg.num_keys = 1000;
  cfg.write_ratio = 0.5;
  WorkloadGenerator a(cfg);
  WorkloadGenerator b(cfg);
  for (int i = 0; i < 100; ++i) {
    const Op x = a.Next();
    const Op y = b.Next();
    EXPECT_EQ(x.key, y.key);
    EXPECT_EQ(x.type, y.type);
  }
}

TEST(BuildPopularityVector, HeadPlusTailIsOne) {
  auto dist = MakeDistribution(100000, 0.99);
  const PopularityVector pv = BuildPopularityVector(*dist, 1000);
  double head = 0.0;
  for (double p : pv.head) {
    head += p;
  }
  EXPECT_NEAR(head + pv.tail_mass, 1.0, 1e-9);
  EXPECT_EQ(pv.head.size(), 1000u);
}

TEST(BuildPopularityVector, TopKClampsToNumKeys) {
  auto dist = MakeDistribution(50, 0.9);
  const PopularityVector pv = BuildPopularityVector(*dist, 1000);
  EXPECT_EQ(pv.head.size(), 50u);
  EXPECT_NEAR(pv.tail_mass, 0.0, 1e-9);
}

TEST(BuildPopularityVector, UniformHead) {
  auto dist = MakeDistribution(1000, 0.0);
  const PopularityVector pv = BuildPopularityVector(*dist, 10);
  for (double p : pv.head) {
    EXPECT_DOUBLE_EQ(p, 0.001);
  }
  EXPECT_NEAR(pv.tail_mass, 0.99, 1e-9);
}

}  // namespace
}  // namespace distcache
