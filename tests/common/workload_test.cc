#include "common/workload.h"

#include <gtest/gtest.h>

namespace distcache {
namespace {

TEST(WorkloadGenerator, ReadOnlyProducesNoWrites) {
  WorkloadConfig cfg;
  cfg.num_keys = 1000;
  cfg.write_ratio = 0.0;
  WorkloadGenerator gen(cfg);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(gen.Next().type, OpType::kGet);
  }
}

TEST(WorkloadGenerator, WriteOnlyProducesAllWrites) {
  WorkloadConfig cfg;
  cfg.num_keys = 1000;
  cfg.write_ratio = 1.0;
  WorkloadGenerator gen(cfg);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(gen.Next().type, OpType::kPut);
  }
}

TEST(WorkloadGenerator, WriteRatioIsRespected) {
  WorkloadConfig cfg;
  cfg.num_keys = 1000;
  cfg.write_ratio = 0.3;
  WorkloadGenerator gen(cfg);
  int writes = 0;
  constexpr int kOps = 50000;
  for (int i = 0; i < kOps; ++i) {
    writes += gen.Next().type == OpType::kPut ? 1 : 0;
  }
  EXPECT_NEAR(static_cast<double>(writes) / kOps, 0.3, 0.02);
}

TEST(WorkloadGenerator, KeysInRange) {
  WorkloadConfig cfg;
  cfg.num_keys = 500;
  cfg.zipf_theta = 0.99;
  WorkloadGenerator gen(cfg);
  for (int i = 0; i < 5000; ++i) {
    EXPECT_LT(gen.Next().key, 500u);
  }
}

TEST(WorkloadGenerator, DeterministicFromSeed) {
  WorkloadConfig cfg;
  cfg.num_keys = 1000;
  cfg.write_ratio = 0.5;
  WorkloadGenerator a(cfg);
  WorkloadGenerator b(cfg);
  for (int i = 0; i < 100; ++i) {
    const Op x = a.Next();
    const Op y = b.Next();
    EXPECT_EQ(x.key, y.key);
    EXPECT_EQ(x.type, y.type);
  }
}

TEST(PhasedWorkload, PhasesSwitchThetaWriteRatioAndShift) {
  WorkloadConfig cfg;
  cfg.num_keys = 1000;
  cfg.zipf_theta = 0.99;
  cfg.write_ratio = 0.0;
  WorkloadPhase phase;
  phase.start_request = 500;
  phase.zipf_theta = 0.0;  // uniform
  phase.write_ratio = 1.0;
  phase.hot_shift = 100;
  cfg.phases = {phase};
  WorkloadGenerator gen(cfg);
  for (int i = 0; i < 500; ++i) {
    EXPECT_EQ(gen.Next().type, OpType::kGet);
  }
  EXPECT_EQ(gen.hot_shift(), 0u);
  for (int i = 0; i < 500; ++i) {
    const Op op = gen.Next();
    EXPECT_EQ(op.type, OpType::kPut);
    EXPECT_LT(op.key, 1000u);  // rotation wraps inside the keyspace
  }
  EXPECT_EQ(gen.hot_shift(), 100u);
  EXPECT_DOUBLE_EQ(gen.write_ratio(), 1.0);
}

TEST(PhasedWorkload, HotShiftRotatesRanks) {
  WorkloadConfig cfg;
  cfg.num_keys = 1000;
  cfg.zipf_theta = 0.99;
  WorkloadConfig shifted = cfg;
  WorkloadPhase phase;
  phase.start_request = 0;
  phase.zipf_theta = cfg.zipf_theta;
  phase.hot_shift = 250;
  shifted.phases = {phase};
  WorkloadGenerator a(cfg);
  WorkloadGenerator b(shifted);
  for (int i = 0; i < 2000; ++i) {
    // Identical RNG streams: the shifted generator's key is the rotation of the
    // unshifted one, rank for rank.
    EXPECT_EQ((a.Next().key + 250) % 1000, b.Next().key);
  }
}

TEST(ParsePhaseList, ParsesAndSortsValidLists) {
  std::vector<WorkloadPhase> phases;
  std::string error;
  ASSERT_TRUE(ParsePhaseList("500000:0.9:0.1:777,0:0.99:0.0", &phases, &error))
      << error;
  ASSERT_EQ(phases.size(), 2u);
  EXPECT_EQ(phases[0].start_request, 0u);  // sorted by start
  EXPECT_DOUBLE_EQ(phases[0].zipf_theta, 0.99);
  EXPECT_EQ(phases[1].start_request, 500000u);
  EXPECT_DOUBLE_EQ(phases[1].write_ratio, 0.1);
  EXPECT_EQ(phases[1].hot_shift, 777u);
}

TEST(ParsePhaseList, RejectsMalformedInput) {
  std::vector<WorkloadPhase> phases;
  std::string error;
  // Wrong arity, non-numeric fields, NaN, out-of-range ratios, negatives —
  // including whitespace-prefixed negatives, which bare strtoull would
  // silently wrap to huge uint64 values.
  for (const char* bad :
       {"", "0:0.99", "0:0.99:0.0:1:2", "x:0.99:0.0", "0:nan:0.0", "0:0.99:1.5",
        "0:1.2:0.0", "0:0.99:-0.1", "-5:0.99:0.0", "0:0.99:0.0:abc",
        "0:0.99:0.0, -5:0.9:0.1", " 1:0.99:0.0", "0:0.99:0.0: -3"}) {
    error.clear();
    EXPECT_FALSE(ParsePhaseList(bad, &phases, &error)) << "accepted: " << bad;
    EXPECT_FALSE(error.empty()) << bad;
  }
}

TEST(BuildPopularityVector, HeadPlusTailIsOne) {
  auto dist = MakeDistribution(100000, 0.99);
  const PopularityVector pv = BuildPopularityVector(*dist, 1000);
  double head = 0.0;
  for (double p : pv.head) {
    head += p;
  }
  EXPECT_NEAR(head + pv.tail_mass, 1.0, 1e-9);
  EXPECT_EQ(pv.head.size(), 1000u);
}

TEST(BuildPopularityVector, TopKClampsToNumKeys) {
  auto dist = MakeDistribution(50, 0.9);
  const PopularityVector pv = BuildPopularityVector(*dist, 1000);
  EXPECT_EQ(pv.head.size(), 50u);
  EXPECT_NEAR(pv.tail_mass, 0.0, 1e-9);
}

TEST(BuildPopularityVector, UniformHead) {
  auto dist = MakeDistribution(1000, 0.0);
  const PopularityVector pv = BuildPopularityVector(*dist, 10);
  for (double p : pv.head) {
    EXPECT_DOUBLE_EQ(p, 0.001);
  }
  EXPECT_NEAR(pv.tail_mass, 0.99, 1e-9);
}

}  // namespace
}  // namespace distcache
