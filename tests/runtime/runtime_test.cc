#include "runtime/runtime.h"

#include <gtest/gtest.h>

#include <thread>

#include "common/workload.h"

namespace distcache {
namespace {

RuntimeConfig SmallRuntime(Mechanism m = Mechanism::kDistCache) {
  RuntimeConfig cfg;
  cfg.mechanism = m;
  cfg.num_spine = 2;
  cfg.num_racks = 2;
  cfg.servers_per_rack = 2;
  cfg.per_switch_objects = 8;
  cfg.num_keys = 512;
  return cfg;
}

TEST(Runtime, GetReturnsSeededValues) {
  DistCacheRuntime rt(SmallRuntime());
  rt.Start();
  auto client = rt.NewClient(1);
  for (uint64_t key = 0; key < 100; ++key) {
    const auto v = client->Get(key);
    ASSERT_TRUE(v.ok()) << key;
    EXPECT_EQ(v.value(), DistCacheRuntime::ValueFor(key));
  }
  rt.Stop();
}

TEST(Runtime, HotKeysServedFromCache) {
  DistCacheRuntime rt(SmallRuntime());
  rt.Start();
  auto client = rt.NewClient(2);
  // Key 0 is the hottest rank: cached in both layers.
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(client->Get(0).ok());
  }
  rt.Stop();
  EXPECT_GE(rt.counters().cache_hits.load(), 50u);
}

TEST(Runtime, UncachedKeysGoToServers) {
  DistCacheRuntime rt(SmallRuntime(Mechanism::kNoCache));
  rt.Start();
  auto client = rt.NewClient(3);
  for (uint64_t key = 0; key < 20; ++key) {
    ASSERT_TRUE(client->Get(key).ok());
  }
  rt.Stop();
  EXPECT_EQ(rt.counters().cache_hits.load(), 0u);
  EXPECT_EQ(rt.counters().server_gets.load(), 20u);
}

TEST(Runtime, ReadAfterWriteIsConsistent) {
  DistCacheRuntime rt(SmallRuntime());
  rt.Start();
  auto client = rt.NewClient(4);
  // Key 0 is cached in both layers; the write must update every copy so that both
  // PoT choices return the new value.
  ASSERT_TRUE(client->Put(0, "updated").ok());
  for (int i = 0; i < 40; ++i) {  // exercise both candidates
    const auto v = client->Get(0);
    ASSERT_TRUE(v.ok());
    EXPECT_EQ(v.value(), "updated");
  }
  rt.Stop();
  EXPECT_GE(rt.counters().invalidations.load(), 1u);
  EXPECT_GE(rt.counters().cache_updates.load(), 1u);
}

TEST(Runtime, WriteToUncachedKeySkipsProtocol) {
  DistCacheRuntime rt(SmallRuntime(Mechanism::kNoCache));
  rt.Start();
  auto client = rt.NewClient(5);
  ASSERT_TRUE(client->Put(7, "x").ok());
  EXPECT_EQ(client->Get(7).value(), "x");
  rt.Stop();
  EXPECT_EQ(rt.counters().invalidations.load(), 0u);
}

TEST(Runtime, ReplicationWritesTouchAllSpines) {
  DistCacheRuntime rt(SmallRuntime(Mechanism::kCacheReplication));
  rt.Start();
  auto client = rt.NewClient(6);
  ASSERT_TRUE(client->Put(0, "r").ok());  // key 0 replicated in both spines + leaf
  rt.Stop();
  EXPECT_GE(rt.counters().invalidations.load(), 3u);
  EXPECT_GE(rt.counters().cache_updates.load(), 3u);
}

TEST(Runtime, TelemetryReachesClientTracker) {
  DistCacheRuntime rt(SmallRuntime());
  rt.Start();
  auto client = rt.NewClient(7);
  for (int i = 0; i < 30; ++i) {
    client->Get(0).ok();
  }
  const auto& tracker = client->tracker();
  double total = 0.0;
  for (double l : tracker.spine_loads()) {
    total += l;
  }
  for (double l : tracker.leaf_loads()) {
    total += l;
  }
  EXPECT_GT(total, 0.0);
  rt.Stop();
}

TEST(Runtime, ConcurrentClientsSeeConsistentData) {
  DistCacheRuntime rt(SmallRuntime());
  rt.Start();
  constexpr int kClients = 4;
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&rt, c, &failures] {
      auto client = rt.NewClient(100 + c);
      WorkloadConfig wl;
      wl.num_keys = 512;
      wl.zipf_theta = 0.99;
      wl.seed = c;
      WorkloadGenerator gen(wl);
      for (int i = 0; i < 500; ++i) {
        const Op op = gen.Next();
        const auto v = client->Get(op.key);
        if (!v.ok() || v.value().empty()) {
          ++failures;
        }
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  rt.Stop();
  EXPECT_EQ(failures.load(), 0);
}

TEST(Runtime, ConcurrentWritersAndReaders) {
  DistCacheRuntime rt(SmallRuntime());
  rt.Start();
  std::atomic<bool> stop{false};
  std::atomic<int> bad_reads{0};
  std::thread writer([&] {
    auto client = rt.NewClient(200);
    for (int i = 0; i < 200; ++i) {
      client->Put(0, "w" + std::to_string(i)).ok();
    }
    stop = true;
  });
  std::thread reader([&] {
    auto client = rt.NewClient(201);
    while (!stop) {
      const auto v = client->Get(0);
      // Value must always be either the seed or some writer value — never empty,
      // never a mix (two-phase coherence guarantees this).
      if (!v.ok() || (v.value()[0] != 'v' && v.value()[0] != 'w')) {
        ++bad_reads;
      }
    }
  });
  writer.join();
  reader.join();
  rt.Stop();
  EXPECT_EQ(bad_reads.load(), 0);
}

TEST(Runtime, StopIsIdempotentAndGetFailsAfterStop) {
  DistCacheRuntime rt(SmallRuntime());
  rt.Start();
  auto client = rt.NewClient(8);
  rt.Stop();
  rt.Stop();
  EXPECT_EQ(client->Get(1).status().code(), StatusCode::kUnavailable);
  EXPECT_EQ(client->Put(1, "x").code(), StatusCode::kUnavailable);
}

TEST(Runtime, LoadCountersExposedPerSwitch) {
  DistCacheRuntime rt(SmallRuntime());
  rt.Start();
  auto client = rt.NewClient(9);
  for (int i = 0; i < 64; ++i) {
    client->Get(0).ok();
  }
  rt.Stop();
  uint64_t total = 0;
  for (uint64_t l : rt.SpineLoads()) {
    total += l;
  }
  for (uint64_t l : rt.LeafLoads()) {
    total += l;
  }
  EXPECT_GE(total, 64u);
}

// Shutdown must fail loudly, never hang: requests issued after Stop() get
// Unavailable (the closed-inbox Send is detected), and a client caught mid-flight
// by a concurrent Stop() must always be unblocked — the switch loop replies with
// an unavailable message when its forward to a closed server inbox is dropped.
TEST(Runtime, RequestsAfterStopReturnUnavailable) {
  DistCacheRuntime rt(SmallRuntime());
  rt.Start();
  auto client = rt.NewClient(9);
  ASSERT_TRUE(client->Get(0).ok());
  rt.Stop();
  const auto get = client->Get(0);
  ASSERT_FALSE(get.ok());
  EXPECT_EQ(get.status().code(), StatusCode::kUnavailable);
  EXPECT_EQ(client->Put(1, "x").code(), StatusCode::kUnavailable);
}

TEST(Runtime, ConcurrentStopNeverStrandsClients) {
  DistCacheRuntime rt(SmallRuntime());
  rt.Start();
  std::thread driver([&rt] {
    auto client = rt.NewClient(10);
    // Uncached keys force the switch→server forward that races Stop()'s inbox
    // close; every call must return (ok or Unavailable), never block forever.
    for (uint64_t key = 300; key < 512; ++key) {
      (void)client->Get(key);
    }
  });
  rt.Stop();
  driver.join();  // hangs here (test times out) if a reply was silently dropped
}

// Parameterized correctness across all four mechanisms: every key readable, and a
// write is immediately visible regardless of where copies live.
class RuntimeMechanismTest : public ::testing::TestWithParam<Mechanism> {};

TEST_P(RuntimeMechanismTest, ReadYourWrites) {
  DistCacheRuntime rt(SmallRuntime(GetParam()));
  rt.Start();
  auto client = rt.NewClient(10);
  for (uint64_t key : {0ull, 1ull, 100ull, 500ull}) {
    ASSERT_TRUE(client->Put(key, "nv" + std::to_string(key)).ok());
    for (int i = 0; i < 8; ++i) {
      const auto v = client->Get(key);
      ASSERT_TRUE(v.ok());
      EXPECT_EQ(v.value(), "nv" + std::to_string(key));
    }
  }
  rt.Stop();
}

INSTANTIATE_TEST_SUITE_P(Mechanisms, RuntimeMechanismTest,
                         ::testing::Values(Mechanism::kNoCache,
                                           Mechanism::kCachePartition,
                                           Mechanism::kCacheReplication,
                                           Mechanism::kDistCache),
                         [](const auto& param_info) { return MechanismName(param_info.param); });

}  // namespace
}  // namespace distcache
