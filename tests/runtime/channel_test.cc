#include "runtime/channel.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <thread>
#include <vector>

#include "sim/shard_message.h"

namespace distcache {
namespace {

TEST(Channel, FifoWithinSingleProducer) {
  Channel<int> ch;
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(ch.Send(i));
  }
  for (int i = 0; i < 100; ++i) {
    auto v = ch.Receive();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, i);
  }
}

TEST(Channel, TryReceiveReturnsNulloptWhenEmpty) {
  Channel<int> ch;
  EXPECT_FALSE(ch.TryReceive().has_value());
  ASSERT_TRUE(ch.Send(7));
  auto v = ch.TryReceive();
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, 7);
  EXPECT_FALSE(ch.TryReceive().has_value());
}

TEST(Channel, CloseDrainsThenReturnsNullopt) {
  Channel<int> ch;
  ASSERT_TRUE(ch.Send(1));
  ASSERT_TRUE(ch.Send(2));
  ch.Close();
  EXPECT_FALSE(ch.Send(3));  // closed channels reject new items
  EXPECT_EQ(ch.Receive().value_or(-1), 1);
  EXPECT_EQ(ch.Receive().value_or(-1), 2);
  EXPECT_FALSE(ch.Receive().has_value());
  EXPECT_FALSE(ch.TryReceive().has_value());
}

TEST(Channel, ReceiveBlocksUntilSend) {
  Channel<int> ch;
  std::thread producer([&ch] { ASSERT_TRUE(ch.Send(42)); });
  const auto v = ch.Receive();
  producer.join();
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, 42);
}

// The sharded backend's cross-shard protocol in miniature: several producer shards
// send batched load-delta messages followed by a Done marker to one owner's inbox.
// Per-sender FIFO means once the owner has seen Done from every peer, every delta
// has been applied — the invariant the end-of-run drain relies on.
TEST(Channel, CrossShardDeltaStreamsDrainCompletely) {
  constexpr uint32_t kPeers = 3;
  constexpr int kMessagesPerPeer = 50;
  Channel<ShardMsg> inbox;

  std::vector<std::thread> peers;
  for (uint32_t p = 0; p < kPeers; ++p) {
    peers.emplace_back([&inbox, p] {
      for (int i = 0; i < kMessagesPerPeer; ++i) {
        ShardMsg msg;
        msg.kind = ShardMsg::Kind::kLoadDeltas;
        msg.from = p;
        msg.cache_entries.emplace_back(CacheNodeId{0, p}, 1.0);
        ASSERT_TRUE(inbox.Send(std::move(msg)));
      }
      ShardMsg done;
      done.kind = ShardMsg::Kind::kDone;
      done.from = p;
      ASSERT_TRUE(inbox.Send(std::move(done)));
    });
  }

  // Owner: drain (blocking) until Done has arrived from every peer.
  std::vector<double> applied(kPeers, 0.0);
  uint32_t done_seen = 0;
  while (done_seen < kPeers) {
    auto msg = inbox.Receive();
    ASSERT_TRUE(msg.has_value());
    if (msg->kind == ShardMsg::Kind::kDone) {
      ++done_seen;
      // FIFO per sender: every delta this peer sent must already be applied.
      EXPECT_DOUBLE_EQ(applied[msg->from], kMessagesPerPeer);
    } else {
      for (const auto& [node, delta] : msg->cache_entries) {
        applied[node.index] += delta;
      }
    }
  }
  for (auto& t : peers) {
    t.join();
  }
  for (uint32_t p = 0; p < kPeers; ++p) {
    EXPECT_DOUBLE_EQ(applied[p], kMessagesPerPeer);
  }
  EXPECT_FALSE(inbox.TryReceive().has_value());
}

TEST(Channel, ManyProducersOneConsumerLosesNothing) {
  Channel<uint64_t> ch;
  constexpr int kProducers = 4;
  constexpr uint64_t kPerProducer = 5000;
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&ch] {
      for (uint64_t i = 0; i < kPerProducer; ++i) {
        ASSERT_TRUE(ch.Send(1));
      }
    });
  }
  uint64_t sum = 0;
  for (uint64_t i = 0; i < kProducers * kPerProducer; ++i) {
    const auto v = ch.Receive();
    ASSERT_TRUE(v.has_value());
    sum += *v;
  }
  for (auto& t : producers) {
    t.join();
  }
  EXPECT_EQ(sum, kProducers * kPerProducer);
}

// CloseAndDrain atomically closes and returns the undelivered backlog: nothing a
// consumer will ever see again, nothing lost. The shutdown-accounting primitive
// for the stranded-message class of bug.
TEST(Channel, CloseAndDrainReturnsUndeliveredItems) {
  Channel<int> ch;
  ASSERT_TRUE(ch.Send(1));
  ASSERT_TRUE(ch.Send(2));
  ASSERT_TRUE(ch.Send(3));
  EXPECT_EQ(ch.Receive().value_or(-1), 1);  // consumed before shutdown
  const std::vector<int> undelivered = ch.CloseAndDrain();
  EXPECT_EQ(undelivered, (std::vector<int>{2, 3}));
  // Closed and empty: receivers observe clean end-of-stream, senders rejection.
  EXPECT_FALSE(ch.Receive().has_value());
  EXPECT_FALSE(ch.TryReceive().has_value());
  EXPECT_FALSE(ch.Send(4));
  EXPECT_EQ(ch.size(), 0u);
}

// Send after close must be reported to the caller — the bool result is the only
// delivery signal, and the rejected-send counter lets shutdown paths assert the
// rejection was observed rather than silently dropped.
TEST(Channel, SendAfterCloseIsReportedAndCounted) {
  Channel<int> ch;
  EXPECT_EQ(ch.rejected_sends(), 0u);
  ch.Close();
  EXPECT_FALSE(ch.Send(1));
  EXPECT_FALSE(ch.Send(2));
  EXPECT_EQ(ch.rejected_sends(), 2u);
}

// CloseAndDrain wakes blocked receivers with end-of-stream, like Close.
TEST(Channel, CloseAndDrainWakesBlockedReceiver) {
  Channel<int> ch;
  std::optional<int> got = 0;
  std::thread consumer([&] { got = ch.Receive(); });
  const std::vector<int> undelivered = ch.CloseAndDrain();
  consumer.join();
  EXPECT_TRUE(undelivered.empty());
  EXPECT_FALSE(got.has_value());
}

}  // namespace
}  // namespace distcache
