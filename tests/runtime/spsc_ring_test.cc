// SpscRing: wrap-around correctness, full-ring backpressure, batched publish
// visibility, and a producer/consumer stress loop (run under TSan/ASan configs
// by the sanitizer CI job — the memory-ordering regression guard).
#include "runtime/spsc_ring.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

namespace distcache {
namespace {

TEST(SpscRing, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(SpscRing<int>(1).capacity(), 1u);
  EXPECT_EQ(SpscRing<int>(2).capacity(), 2u);
  EXPECT_EQ(SpscRing<int>(3).capacity(), 4u);
  EXPECT_EQ(SpscRing<int>(256).capacity(), 256u);
  EXPECT_EQ(SpscRing<int>(257).capacity(), 512u);
}

TEST(SpscRing, FifoThroughManyWrapArounds) {
  SpscRing<uint64_t> ring(8);  // tiny: every 8 pushes wraps the index
  uint64_t next_pop = 0;
  for (uint64_t next_push = 0; next_push < 1000;) {
    while (next_push < 1000 && ring.TryPush(uint64_t{next_push})) {
      ++next_push;
    }
    for (auto item = ring.TryPop(); item; item = ring.TryPop()) {
      EXPECT_EQ(*item, next_pop);
      ++next_pop;
    }
  }
  EXPECT_EQ(next_pop, 1000u);
  EXPECT_TRUE(ring.EmptyApprox());
}

TEST(SpscRing, FullRingRejectsPushUntilPop) {
  SpscRing<int> ring(4);
  for (int i = 0; i < 4; ++i) {
    EXPECT_TRUE(ring.TryPush(int{i}));
  }
  EXPECT_FALSE(ring.TryPush(99));  // full: backpressure, item not lost silently
  EXPECT_FALSE(ring.TryPush(99));
  ASSERT_TRUE(ring.TryPop().has_value());
  EXPECT_TRUE(ring.TryPush(4));  // one slot freed, push succeeds again
  // FIFO preserved across the rejection: 1, 2, 3, 4.
  for (int expect = 1; expect <= 4; ++expect) {
    auto item = ring.TryPop();
    ASSERT_TRUE(item.has_value());
    EXPECT_EQ(*item, expect);
  }
  EXPECT_FALSE(ring.TryPop().has_value());
}

TEST(SpscRing, StagedItemsInvisibleUntilPublish) {
  SpscRing<int> ring(8);
  EXPECT_TRUE(ring.TryStage(1));
  EXPECT_TRUE(ring.TryStage(2));
  EXPECT_FALSE(ring.TryPop().has_value());  // staged, not published
  EXPECT_TRUE(ring.EmptyApprox());
  ring.Publish();
  EXPECT_FALSE(ring.EmptyApprox());
  EXPECT_EQ(ring.TryPop().value(), 1);
  EXPECT_EQ(ring.TryPop().value(), 2);
}

TEST(SpscRing, StagingRespectsCapacityBackpressure) {
  SpscRing<int> ring(4);
  for (int i = 0; i < 4; ++i) {
    EXPECT_TRUE(ring.TryStage(int{i}));
  }
  EXPECT_FALSE(ring.TryStage(99));  // staged slots count against capacity
  ring.Publish();
  ASSERT_TRUE(ring.TryPop().has_value());
  EXPECT_TRUE(ring.TryStage(4));
}

TEST(SpscRing, DestructorReleasesUnconsumedAndStagedItems) {
  // Move-only payloads with live allocations: leaks would trip ASan.
  auto ring = std::make_unique<SpscRing<std::unique_ptr<std::string>>>(8);
  ASSERT_TRUE(ring->TryPush(std::make_unique<std::string>("published")));
  ASSERT_TRUE(ring->TryStage(std::make_unique<std::string>("staged")));
  ring.reset();  // must destroy both
}

// Concurrent stress: one producer, one consumer, a ring deliberately far
// smaller than the item count so both full-ring and empty-ring races are hit
// constantly. The consumer checks strict FIFO; the sanitizer configs check the
// ordering discipline.
TEST(SpscRing, ConcurrentProducerConsumerStress) {
  constexpr uint64_t kItems = 200'000;
  SpscRing<uint64_t> ring(16);
  std::thread producer([&] {
    for (uint64_t i = 0; i < kItems;) {
      if (ring.TryPush(uint64_t{i})) {
        ++i;
      } else {
        std::this_thread::yield();
      }
    }
  });
  uint64_t expect = 0;
  while (expect < kItems) {
    if (auto item = ring.TryPop()) {
      ASSERT_EQ(*item, expect);
      ++expect;
    } else {
      std::this_thread::yield();
    }
  }
  EXPECT_FALSE(ring.TryPop().has_value());
  producer.join();
}

// Same stress through the batched-publish producer API.
TEST(SpscRing, ConcurrentStressWithBatchedPublish) {
  constexpr uint64_t kItems = 100'000;
  constexpr uint64_t kBatch = 7;  // deliberately not a divisor of capacity
  SpscRing<uint64_t> ring(32);
  std::thread producer([&] {
    uint64_t i = 0;
    while (i < kItems) {
      uint64_t staged = 0;
      while (staged < kBatch && i < kItems && ring.TryStage(uint64_t{i})) {
        ++i;
        ++staged;
      }
      ring.Publish();
      if (staged == 0) {
        std::this_thread::yield();
      }
    }
  });
  uint64_t expect = 0;
  while (expect < kItems) {
    if (auto item = ring.TryPop()) {
      ASSERT_EQ(*item, expect);
      ++expect;
    } else {
      std::this_thread::yield();
    }
  }
  producer.join();
}

}  // namespace
}  // namespace distcache
