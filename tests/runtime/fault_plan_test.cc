// FaultPlan spec parser / generator tests (runtime/fault_plan.h). Pure
// string/RNG logic — no forking, so these run everywhere including TSan.
#include "runtime/fault_plan.h"

#include <gtest/gtest.h>

#include <string>

namespace distcache {
namespace {

TEST(FaultPlanTest, EmptySpecYieldsEmptyPlan) {
  FaultPlan plan;
  std::string error;
  ASSERT_TRUE(ParseFaultPlan("", 4, 100'000, 42, &plan, &error)) << error;
  EXPECT_TRUE(plan.empty());
  EXPECT_FALSE(plan.arena_map_failure());
  EXPECT_EQ(plan.max_stall_ms(), 0u);
}

TEST(FaultPlanTest, ParsesExplicitEvents) {
  FaultPlan plan;
  std::string error;
  ASSERT_TRUE(ParseFaultPlan("kill:1@5000,stall:0@2000:250,drop:2@7500", 4,
                             100'000, 42, &plan, &error))
      << error;
  ASSERT_EQ(plan.events.size(), 3u);
  EXPECT_EQ(plan.events[0].kind, FaultKind::kCrashKill);
  EXPECT_EQ(plan.events[0].shard, 1u);
  EXPECT_EQ(plan.events[0].at_request, 5000u);
  EXPECT_EQ(plan.events[1].kind, FaultKind::kStall);
  EXPECT_EQ(plan.events[1].param, 250u);
  EXPECT_EQ(plan.max_stall_ms(), 250u);
  // Default params: drop swallows 2 broadcasts unless told otherwise.
  EXPECT_EQ(plan.events[2].kind, FaultKind::kDropTelemetry);
  EXPECT_EQ(plan.events[2].param, 2u);
}

TEST(FaultPlanTest, EveryKindNameRoundTrips) {
  for (const FaultKind kind :
       {FaultKind::kCrashClean, FaultKind::kCrashKill, FaultKind::kCrashAbort,
        FaultKind::kStall, FaultKind::kDropTelemetry, FaultKind::kDelayControl,
        FaultKind::kCorruptStats, FaultKind::kArenaMapFail}) {
    FaultKind back = FaultKind::kCrashKill;
    ASSERT_TRUE(ParseFaultKind(FaultKindName(kind), &back))
        << FaultKindName(kind);
    EXPECT_EQ(back, kind);
  }
  FaultKind ignored;
  EXPECT_FALSE(ParseFaultKind("quux", &ignored));
}

TEST(FaultPlanTest, MapfailIsABarePseudoEvent) {
  FaultPlan plan;
  std::string error;
  ASSERT_TRUE(ParseFaultPlan("mapfail", 4, 100'000, 42, &plan, &error))
      << error;
  EXPECT_TRUE(plan.arena_map_failure());
  // mapfail cannot be targeted at a shard/time — it happens before the fork.
  EXPECT_FALSE(ParseFaultPlan("mapfail:0@100", 4, 100'000, 42, &plan, &error));
}

TEST(FaultPlanTest, RejectsMalformedSpecs) {
  FaultPlan plan;
  std::string error;
  // Unknown kind, missing timestamp, shard out of range.
  EXPECT_FALSE(ParseFaultPlan("frob:0@10", 4, 100'000, 42, &plan, &error));
  EXPECT_FALSE(error.empty());
  EXPECT_FALSE(ParseFaultPlan("kill:0", 4, 100'000, 42, &plan, &error));
  EXPECT_FALSE(ParseFaultPlan("kill:9@10", 4, 100'000, 42, &plan, &error));
}

TEST(FaultPlanTest, RandomSpecIsSeededAndDeterministic) {
  FaultPlan a;
  FaultPlan b;
  std::string error;
  ASSERT_TRUE(ParseFaultPlan("random:8", 4, 100'000, 7, &a, &error)) << error;
  ASSERT_TRUE(ParseFaultPlan("random:8", 4, 100'000, 7, &b, &error)) << error;
  ASSERT_EQ(a.events.size(), 8u);
  for (size_t i = 0; i < a.events.size(); ++i) {
    EXPECT_EQ(a.events[i].kind, b.events[i].kind);
    EXPECT_EQ(a.events[i].shard, b.events[i].shard);
    EXPECT_EQ(a.events[i].at_request, b.events[i].at_request);
    EXPECT_EQ(a.events[i].param, b.events[i].param);
    // Never mapfail, always in-range, and inside the run.
    EXPECT_NE(a.events[i].kind, FaultKind::kArenaMapFail);
    EXPECT_LT(a.events[i].shard, 4u);
    EXPECT_LT(a.events[i].at_request, 100'000u);
  }
  // A different seed moves the plan (overwhelmingly likely with 8 events).
  FaultPlan c = GenerateFaultPlan(8, /*kind_or_negative=*/-1, 8, 4, 100'000);
  bool any_diff = false;
  for (size_t i = 0; i < c.events.size(); ++i) {
    any_diff = any_diff || c.events[i].at_request != a.events[i].at_request ||
               c.events[i].shard != a.events[i].shard;
  }
  EXPECT_TRUE(any_diff);
}

TEST(FaultPlanTest, RandomSpecWithFixedKind) {
  FaultPlan plan;
  std::string error;
  ASSERT_TRUE(ParseFaultPlan("random:5:stall", 2, 50'000, 42, &plan, &error))
      << error;
  ASSERT_EQ(plan.events.size(), 5u);
  for (const FaultEvent& ev : plan.events) {
    EXPECT_EQ(ev.kind, FaultKind::kStall);
    EXPECT_GT(ev.param, 0u);
  }
}

TEST(FaultPlanTest, ToStringRoundTripsThroughParser) {
  FaultPlan plan = GenerateFaultPlan(42, -1, 6, 4, 200'000);
  plan.events.push_back({FaultKind::kArenaMapFail, 0, 0, 0});
  const std::string spec = FaultPlanToString(plan);
  FaultPlan back;
  std::string error;
  ASSERT_TRUE(ParseFaultPlan(spec, 4, 200'000, 42, &back, &error))
      << spec << ": " << error;
  ASSERT_EQ(back.events.size(), plan.events.size());
  for (size_t i = 0; i < plan.events.size(); ++i) {
    EXPECT_EQ(back.events[i].kind, plan.events[i].kind);
    EXPECT_EQ(back.events[i].shard, plan.events[i].shard);
    EXPECT_EQ(back.events[i].at_request, plan.events[i].at_request);
    EXPECT_EQ(back.events[i].param, plan.events[i].param);
  }
  EXPECT_TRUE(back.arena_map_failure());
}

TEST(FaultPlanTest, CommaListMixesTermKinds) {
  FaultPlan plan;
  std::string error;
  ASSERT_TRUE(ParseFaultPlan("kill:0@1000,random:3,mapfail", 2, 10'000, 1,
                             &plan, &error))
      << error;
  EXPECT_TRUE(plan.arena_map_failure());
  EXPECT_EQ(plan.events.size(), 5u);  // 1 explicit + 3 random + mapfail
}

}  // namespace
}  // namespace distcache
