// Shared-memory arena tests (runtime/shm_arena.h + runtime/shm_ring.h):
//
//  * ArenaLayout hands out cache-line-aligned, non-overlapping offsets;
//  * Map/Unmap round-trips cleanly (zero-filled, writable, idempotent unmap —
//    the teardown path the ASan CI job runs through this very test);
//  * a huge-page request on a host with no hugepage pool silently falls back
//    to normal pages instead of failing the run;
//  * the availability probes answer without side effects;
//  * a ShmSpscRing over the arena carries slots from a forked child to the
//    parent — the exact producer/consumer topology the multiproc engine runs.
//
// The fork smoke test is skipped under TSan (TSan's runtime does not follow
// fork-without-exec children) and on platforms without fork; the pure-layout
// tests run everywhere.
#include <gtest/gtest.h>

#include <cstring>

#include "common/cacheline.h"
#include "runtime/backoff.h"
#include "runtime/shm_arena.h"
#include "runtime/shm_ring.h"

#if defined(__linux__)
#include <sys/wait.h>
#include <unistd.h>
#endif

#if defined(__SANITIZE_THREAD__)
#define DISTCACHE_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define DISTCACHE_TSAN 1
#endif
#endif

namespace distcache {
namespace {

TEST(ArenaLayout, ReservationsAreAlignedAndDisjoint) {
  ArenaLayout layout;
  const size_t a = layout.Reserve(1);    // sub-line block still gets a line
  const size_t b = layout.Reserve(100);  // unaligned size
  const size_t c = layout.Reserve(64, 4096);  // page-aligned request
  EXPECT_EQ(a % kCacheLineSize, 0u);
  EXPECT_EQ(b % kCacheLineSize, 0u);
  EXPECT_EQ(c % 4096u, 0u);
  // Disjoint and ordered: each block starts at or after the previous end.
  EXPECT_GE(b, a + 1);
  EXPECT_GE(c, b + 100);
  EXPECT_GE(layout.total(), c + 64);
  // Alignment floor: an under-aligned request is raised to the cache line, so
  // two reservations can never share a line (the false-sharing rule).
  ArenaLayout floor;
  floor.Reserve(1, 1);
  EXPECT_EQ(floor.Reserve(1, 1) % kCacheLineSize, 0u);
}

TEST(ShmArena, MapWriteReadUnmapIsClean) {
  ShmArena arena;
  ASSERT_TRUE(arena.Map(1 << 20, /*huge_pages=*/false));
  EXPECT_TRUE(arena.mapped());
  EXPECT_EQ(arena.size(), size_t{1} << 20);
  // Zero-filled by the kernel...
  EXPECT_EQ(arena.base()[0], 0);
  EXPECT_EQ(arena.At((1 << 20) - 1)[0], 0);
  // ...and writable end to end.
  std::memset(arena.base(), 0xab, 1 << 20);
  EXPECT_EQ(arena.At(12345)[0], 0xab);
  arena.Unmap();
  EXPECT_FALSE(arena.mapped());
  arena.Unmap();  // idempotent
  EXPECT_FALSE(arena.mapped());
}

TEST(ShmArena, HugePageRequestFallsBackWhenPoolIsEmpty) {
  // Whether or not this host has a hugepage pool, the mapping must succeed;
  // huge() only reports which backing won.
  ShmArena arena;
  ASSERT_TRUE(arena.Map(1 << 20, /*huge_pages=*/true));
  EXPECT_TRUE(arena.mapped());
  if (!ShmArena::HugePagesAvailable()) {
    EXPECT_FALSE(arena.huge());
  }
  arena.base()[0] = 1;  // backed pages are really there
  arena.Unmap();
}

TEST(ShmArena, AvailabilityProbesAnswerWithoutMapping) {
  // A small normal-page region is available on every supported platform; the
  // probe must not leave a mapping behind (ASan would flag the leak at exit,
  // and repeated probes would exhaust address space).
  for (int i = 0; i < 64; ++i) {
    EXPECT_TRUE(ShmArena::Available(1 << 16));
  }
  (void)ShmArena::HugePagesAvailable();  // either answer; must not crash
}

TEST(ShmRing, StageAndPublishBatchCrossesViewObjects) {
  // Producer and consumer hold *separate* views over the same storage — the
  // in-one-process shape of what the fork pair does.
  constexpr size_t kCapacity = 8;
  constexpr size_t kSlot = 16;
  ShmArena arena;
  ASSERT_TRUE(arena.Map(ShmSpscRing::BytesFor(kCapacity, kSlot), false));
  ShmSpscRing producer(arena.base(), kCapacity, kSlot);
  ShmSpscRing consumer(arena.base(), kCapacity, kSlot);

  EXPECT_TRUE(consumer.EmptyApprox());
  EXPECT_EQ(consumer.Front(), nullptr);

  // Stage two, publish once: neither visible before the Publish, both after.
  for (uint64_t v = 1; v <= 2; ++v) {
    void* slot = producer.TryStage();
    ASSERT_NE(slot, nullptr);
    std::memcpy(slot, &v, sizeof(v));
  }
  EXPECT_TRUE(consumer.EmptyApprox());
  producer.Publish();
  for (uint64_t want = 1; want <= 2; ++want) {
    const void* front = consumer.Front();
    ASSERT_NE(front, nullptr);
    uint64_t got = 0;
    std::memcpy(&got, front, sizeof(got));
    EXPECT_EQ(got, want);
    consumer.Pop();
  }
  EXPECT_TRUE(consumer.EmptyApprox());

  // Full ring: capacity stages succeed, one more fails until a Pop frees it.
  for (size_t i = 0; i < kCapacity; ++i) {
    ASSERT_NE(producer.TryStage(), nullptr);
  }
  producer.Publish();
  EXPECT_EQ(producer.TryStage(), nullptr);
  consumer.Pop();
  EXPECT_NE(producer.TryStage(), nullptr);
}

#if defined(__linux__) && !defined(DISTCACHE_TSAN)
TEST(ShmRing, ForkedChildProducesParentConsumes) {
  constexpr size_t kCapacity = 64;
  constexpr size_t kSlot = sizeof(uint64_t);
  constexpr uint64_t kMessages = 10'000;
  ShmArena arena;
  ASSERT_TRUE(arena.Map(ShmSpscRing::BytesFor(kCapacity, kSlot), false));

  const pid_t pid = fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    // Child: its own producer view over the inherited mapping.
    ShmSpscRing ring(arena.base(), kCapacity, kSlot);
    for (uint64_t v = 1; v <= kMessages; ++v) {
      void* slot;
      Backoff backoff;
      while ((slot = ring.TryStage()) == nullptr) {
        backoff.Pause();
      }
      std::memcpy(slot, &v, sizeof(v));
      ring.Publish();  // per-message publish: maximal ordering traffic
    }
    _exit(0);  // no gtest teardown in the child
  }

  ShmSpscRing ring(arena.base(), kCapacity, kSlot);
  uint64_t expect = 1;
  Backoff backoff;
  while (expect <= kMessages) {
    const void* front = ring.Front();
    if (front == nullptr) {
      backoff.Pause();
      continue;
    }
    uint64_t got = 0;
    std::memcpy(&got, front, sizeof(got));
    ASSERT_EQ(got, expect) << "FIFO violated";  // in order, none lost
    ring.Pop();
    ++expect;
  }
  int status = 0;
  ASSERT_EQ(waitpid(pid, &status, 0), pid);
  EXPECT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), 0);
}
#endif  // __linux__ && !DISTCACHE_TSAN

}  // namespace
}  // namespace distcache
