// Pins the Backoff escalation schedule (runtime/backoff.h): the first
// kYieldSpins - 1 pauses yield, everything after micro-sleeps, and the schedule
// restarts on Reset(). The wait loops this paces (rendezvous barriers, full-ring
// retries, the multiproc supervisor's reap loop) rely on the yield phase being
// long enough to cover a one-batch wait and on the sleep phase existing at all —
// a Backoff that never sleeps burns a pinned core against a stalled peer.
#include <gtest/gtest.h>

#include "runtime/backoff.h"

namespace distcache {
namespace {

TEST(Backoff, EscalatesFromYieldToSleepAtTheDocumentedSpin) {
  Backoff b;
  for (int i = 1; i < Backoff::kYieldSpins; ++i) {
    EXPECT_EQ(b.NextKind(), Backoff::Kind::kYield) << "spin " << i;
    EXPECT_EQ(b.Pause(), Backoff::Kind::kYield) << "spin " << i;
    EXPECT_EQ(b.spins(), i);
  }
  // Spin kYieldSpins and beyond: sleeps, forever (no exponential growth — the
  // header documents why).
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(b.NextKind(), Backoff::Kind::kSleep);
    EXPECT_EQ(b.Pause(), Backoff::Kind::kSleep);
  }
  EXPECT_EQ(b.spins(), Backoff::kYieldSpins + 2);
}

TEST(Backoff, NextKindPredictsPauseWithoutAdvancing) {
  Backoff b;
  for (int i = 0; i < Backoff::kYieldSpins + 8; ++i) {
    const Backoff::Kind predicted = b.NextKind();
    EXPECT_EQ(b.NextKind(), predicted);  // pure: no state advance
    EXPECT_EQ(b.Pause(), predicted);
  }
}

TEST(Backoff, ResetRestartsTheYieldPhase) {
  Backoff b;
  for (int i = 0; i < Backoff::kYieldSpins + 4; ++i) {
    b.Pause();
  }
  ASSERT_EQ(b.NextKind(), Backoff::Kind::kSleep);
  b.Reset();
  EXPECT_EQ(b.spins(), 0);
  EXPECT_EQ(b.NextKind(), Backoff::Kind::kYield);
  EXPECT_EQ(b.Pause(), Backoff::Kind::kYield);
}

}  // namespace
}  // namespace distcache
