#include "dataplane/cache_program.h"

#include <gtest/gtest.h>

#include "common/random.h"
#include "common/zipf.h"

namespace distcache {
namespace {

PipelineCacheSwitch::Config SmallConfig() {
  PipelineCacheSwitch::Config cfg;
  cfg.num_stages = 8;
  cfg.slots_per_stage = 128;
  cfg.cm_width = 1024;
  cfg.bloom_bits = 4096;
  cfg.hh_report_threshold = 16;
  return cfg;
}

TEST(PipelineCacheSwitch, MissOnEmpty) {
  PipelineCacheSwitch sw(SmallConfig());
  std::string value;
  EXPECT_EQ(sw.Lookup(1, &value), LookupResult::kMiss);
}

TEST(PipelineCacheSwitch, InsertUpdateHitRoundTrip) {
  PipelineCacheSwitch sw(SmallConfig());
  ASSERT_TRUE(sw.InsertInvalid(1, 16).ok());
  std::string value;
  EXPECT_EQ(sw.Lookup(1, &value), LookupResult::kInvalid);
  ASSERT_TRUE(sw.UpdateValue(1, "hello").ok());
  EXPECT_EQ(sw.Lookup(1, &value), LookupResult::kHit);
  EXPECT_EQ(value, "hello");
}

TEST(PipelineCacheSwitch, MultiStageValueSpansPipeline) {
  PipelineCacheSwitch sw(SmallConfig());
  // 100 bytes spans 7 of the 8 stages' register arrays.
  std::string big;
  for (int i = 0; i < 100; ++i) {
    big.push_back(static_cast<char>('a' + i % 26));
  }
  ASSERT_TRUE(sw.InsertInvalid(9, big.size()).ok());
  ASSERT_TRUE(sw.UpdateValue(9, big).ok());
  std::string value;
  EXPECT_EQ(sw.Lookup(9, &value), LookupResult::kHit);
  EXPECT_EQ(value, big);
  EXPECT_EQ(sw.slots_used(), 7u);
}

TEST(PipelineCacheSwitch, MaxSizeValue) {
  PipelineCacheSwitch sw(SmallConfig());
  const std::string v(128, 'z');
  ASSERT_TRUE(sw.InsertInvalid(2, 128).ok());
  ASSERT_TRUE(sw.UpdateValue(2, v).ok());
  std::string value;
  EXPECT_EQ(sw.Lookup(2, &value), LookupResult::kHit);
  EXPECT_EQ(value, v);
  EXPECT_EQ(sw.InsertInvalid(3, 129).code(), StatusCode::kInvalidArgument);
}

TEST(PipelineCacheSwitch, SlotExhaustion) {
  PipelineCacheSwitch::Config cfg = SmallConfig();
  cfg.slots_per_stage = 2;
  PipelineCacheSwitch sw(cfg);
  ASSERT_TRUE(sw.InsertInvalid(1, 16).ok());
  ASSERT_TRUE(sw.InsertInvalid(2, 16).ok());
  EXPECT_EQ(sw.InsertInvalid(3, 16).code(), StatusCode::kResourceExhausted);
  sw.Evict(1).ok();
  EXPECT_TRUE(sw.InsertInvalid(3, 16).ok());  // slot reuse
}

TEST(PipelineCacheSwitch, TelemetryCountsValidHitsOnly) {
  PipelineCacheSwitch sw(SmallConfig());
  sw.InsertInvalid(1, 16).ok();
  std::string value;
  sw.Lookup(1, &value);  // invalid: no telemetry
  EXPECT_EQ(sw.TelemetryLoad(), 0u);
  sw.UpdateValue(1, "v").ok();
  sw.Lookup(1, &value);
  sw.Lookup(1, &value);
  EXPECT_EQ(sw.TelemetryLoad(), 2u);
  EXPECT_EQ(sw.HitCount(1), 2u);
  sw.NewEpoch();
  EXPECT_EQ(sw.TelemetryLoad(), 0u);
  EXPECT_EQ(sw.HitCount(1), 0u);
}

TEST(PipelineCacheSwitch, HeavyHitterReportedOnceViaBloom) {
  PipelineCacheSwitch sw(SmallConfig());
  int reports = 0;
  std::string value;
  for (int i = 0; i < 100; ++i) {
    bool reported = false;
    sw.Lookup(77, &value, &reported);
    reports += reported ? 1 : 0;
  }
  EXPECT_EQ(reports, 1);  // bloom rows dedupe within the epoch
  sw.NewEpoch();
  bool reported = false;
  for (int i = 0; i < 100 && !reported; ++i) {
    sw.Lookup(77, &value, &reported);
  }
  EXPECT_TRUE(reported);  // reportable again next epoch
}

TEST(PipelineCacheSwitch, ColdKeysNotReported) {
  PipelineCacheSwitch sw(SmallConfig());
  std::string value;
  for (uint64_t k = 0; k < 200; ++k) {
    bool reported = false;
    sw.Lookup(k, &value, &reported);
    EXPECT_FALSE(reported) << k;
  }
}

TEST(PipelineCacheSwitch, InvalidateThenUpdateRestoresHit) {
  PipelineCacheSwitch sw(SmallConfig());
  sw.InsertInvalid(5, 16).ok();
  sw.UpdateValue(5, "v1").ok();
  sw.Invalidate(5).ok();
  std::string value;
  EXPECT_EQ(sw.Lookup(5, &value), LookupResult::kInvalid);
  sw.UpdateValue(5, "v2").ok();
  EXPECT_EQ(sw.Lookup(5, &value), LookupResult::kHit);
  EXPECT_EQ(value, "v2");
}

TEST(PipelineCacheSwitch, ResourcesDerivedFromProgram) {
  PipelineCacheSwitch sw(PipelineCacheSwitch::Config{});  // paper-sized
  const PipelineResources res = sw.Resources();
  EXPECT_EQ(res.stages_used, 8u);
  EXPECT_GE(res.match_entries, 65536u);  // the lookup table
  // Value store 8 MB + CM 512 KB + bloom 96 KB >> 500 SRAM blocks of 16 KB.
  EXPECT_GT(res.sram_blocks, 500u);
  EXPECT_GE(res.hash_bits, 16u + 4 * 16u + 3 * 18u);
  EXPECT_GT(res.action_slots, 20u);
}

// Differential test: the pipeline-backed switch and the behavioural CacheSwitch must
// agree on every observable for a random operation sequence (HH reporting excluded —
// the two use independently seeded sketches).
class DataPlaneDifferentialTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DataPlaneDifferentialTest, PipelineMatchesBehavioralModel) {
  PipelineCacheSwitch::Config pcfg = SmallConfig();
  pcfg.slots_per_stage = 512;  // stay below both models' capacity limits
  PipelineCacheSwitch pipeline_switch(pcfg);
  CacheSwitch::Config bcfg;
  bcfg.hh.sketch.width = 1024;
  bcfg.hh.bloom.bits = 4096;
  CacheSwitch behavioral(bcfg);

  Rng rng(GetParam());
  for (int i = 0; i < 10000; ++i) {
    const uint64_t key = rng.NextBounded(300);
    switch (rng.NextBounded(5)) {
      case 0: {
        const size_t size = rng.NextBounded(129);
        const Status a = pipeline_switch.InsertInvalid(key, size);
        const Status b = behavioral.InsertInvalid(key, size);
        ASSERT_EQ(a.code(), b.code());
        break;
      }
      case 1: {
        std::string value;
        const size_t len = rng.NextBounded(129);
        value.reserve(len);
        for (size_t c = 0; c < len; ++c) {
          value.push_back(static_cast<char>('a' + rng.NextBounded(26)));
        }
        ASSERT_EQ(pipeline_switch.UpdateValue(key, value).code(),
                  behavioral.UpdateValue(key, value).code());
        break;
      }
      case 2:
        ASSERT_EQ(pipeline_switch.Invalidate(key).code(),
                  behavioral.Invalidate(key).code());
        break;
      case 3:
        ASSERT_EQ(pipeline_switch.Evict(key).code(), behavioral.Evict(key).code());
        break;
      case 4: {
        std::string va;
        std::string vb;
        const LookupResult ra = pipeline_switch.Lookup(key, &va);
        const LookupResult rb = behavioral.Lookup(key, &vb);
        ASSERT_EQ(ra, rb);
        if (ra == LookupResult::kHit) {
          ASSERT_EQ(va, vb);
        }
        behavioral.RecordMiss(key);  // keep the behavioural HH path exercised
        break;
      }
    }
    ASSERT_EQ(pipeline_switch.num_entries(), behavioral.num_entries());
    ASSERT_EQ(pipeline_switch.TelemetryLoad(), behavioral.TelemetryLoad());
    ASSERT_EQ(pipeline_switch.HitCount(key), behavioral.HitCount(key));
    ASSERT_EQ(pipeline_switch.IsValid(key), behavioral.IsValid(key));
    if (i % 2000 == 1999) {
      pipeline_switch.NewEpoch();
      behavioral.NewEpoch();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DataPlaneDifferentialTest,
                         ::testing::Values(1, 2, 3));

}  // namespace
}  // namespace distcache
