#include "dataplane/pipeline.h"

#include <gtest/gtest.h>

namespace distcache {
namespace {

TEST(RegisterArray, ReadWriteMasked) {
  RegisterArray reg("r", 8, 4);  // 4-bit cells
  reg.Write(0, 0xFF);
  EXPECT_EQ(reg.Read(0), 0xFu);  // masked to width
  reg.Write(7, 3);
  EXPECT_EQ(reg.Read(7), 3u);
}

TEST(RegisterArray, OutOfRangeIsSafe) {
  RegisterArray reg("r", 4, 16);
  reg.Write(99, 5);
  EXPECT_EQ(reg.Read(99), 0u);
  EXPECT_EQ(reg.AddSaturating(99, 1), 0u);
}

TEST(RegisterArray, AddSaturates) {
  RegisterArray reg("r", 2, 8);
  for (int i = 0; i < 300; ++i) {
    reg.AddSaturating(0, 1);
  }
  EXPECT_EQ(reg.Read(0), 255u);
}

TEST(RegisterArray, ResetZeroes) {
  RegisterArray reg("r", 4, 32);
  reg.Write(1, 7);
  reg.Reset();
  EXPECT_EQ(reg.Read(1), 0u);
}

TEST(RegisterArray, MemoryBits) {
  RegisterArray reg("r", 1024, 16);
  EXPECT_EQ(reg.memory_bits(), 1024u * 16u);
}

TEST(MatchActionTable, MatchRunsEntryAction) {
  MatchActionTable table("t", "key", 4);
  ASSERT_TRUE(table.AddEntry(7, [](PacketContext& pkt) { pkt.Set("out", 1); }).ok());
  table.SetDefaultAction([](PacketContext& pkt) { pkt.Set("out", 2); });
  PacketContext hit;
  hit.Set("key", 7);
  table.Apply(hit);
  EXPECT_EQ(hit.Get("out"), 1u);
  PacketContext miss;
  miss.Set("key", 8);
  table.Apply(miss);
  EXPECT_EQ(miss.Get("out"), 2u);
}

TEST(MatchActionTable, CapacityEnforced) {
  MatchActionTable table("t", "key", 2);
  EXPECT_TRUE(table.AddEntry(1, [](PacketContext&) {}).ok());
  EXPECT_TRUE(table.AddEntry(2, [](PacketContext&) {}).ok());
  EXPECT_EQ(table.AddEntry(3, [](PacketContext&) {}).code(),
            StatusCode::kResourceExhausted);
  // Updating an existing entry is allowed at capacity.
  EXPECT_TRUE(table.AddEntry(2, [](PacketContext&) {}).ok());
}

TEST(MatchActionTable, RemoveEntry) {
  MatchActionTable table("t", "key", 2);
  table.AddEntry(1, [](PacketContext&) {}).ok();
  EXPECT_TRUE(table.RemoveEntry(1).ok());
  EXPECT_EQ(table.RemoveEntry(1).code(), StatusCode::kNotFound);
}

TEST(Pipeline, StagesRunInOrder) {
  Pipeline pipe(3);
  for (size_t s = 0; s < 3; ++s) {
    pipe.stage(s).AddHook([s](PacketContext& pkt) {
      pkt.Set("trace", pkt.Get("trace") * 10 + (s + 1));
    });
  }
  PacketContext pkt;
  pipe.Process(pkt);
  EXPECT_EQ(pkt.Get("trace"), 123u);
}

TEST(Pipeline, DropStopsProcessing) {
  Pipeline pipe(3);
  pipe.stage(0).AddHook([](PacketContext& pkt) { pkt.dropped = true; });
  pipe.stage(1).AddHook([](PacketContext& pkt) { pkt.Set("ran", 1); });
  PacketContext pkt;
  pipe.Process(pkt);
  EXPECT_TRUE(pkt.dropped);
  EXPECT_EQ(pkt.Get("ran"), 0u);
}

TEST(Pipeline, ResourceAccountingFromProgram) {
  Pipeline pipe(4);
  pipe.stage(0).AddTable("t0", "key", 100);
  pipe.stage(0).DeclareHashBits(16);
  pipe.stage(1).AddRegisterArray("r1", 65536, 16);  // 128 KB => 8 SRAM blocks
  pipe.stage(1).AddHook([](PacketContext&) {});
  const PipelineResources res = pipe.Resources();
  EXPECT_EQ(res.stages_used, 2u);
  EXPECT_EQ(res.match_entries, 100u);
  EXPECT_EQ(res.hash_bits, 16u);
  EXPECT_EQ(res.sram_blocks, 8u);
  EXPECT_EQ(res.action_slots, 3u);  // table default + register ALU + hook
}

}  // namespace
}  // namespace distcache
